package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ColType is the value domain of one CSV column. Typed columns let the
// experiment pipeline reject corrupted or hand-edited artifacts at read time
// with an error naming the offending column.
type ColType string

// The three column domains: free text, integers, and floats (which also
// accept integer-rendered values — FormatFloat prints whole floats without a
// decimal point).
const (
	ColString ColType = "string"
	ColInt    ColType = "int"
	ColFloat  ColType = "float"
)

// Column describes one CSV column: its header name, its value domain, and an
// optional measurement unit (recorded in run manifests and summaries, never
// in the CSV itself).
type Column struct {
	Name string  `json:"name"`
	Type ColType `json:"type"`
	Unit string  `json:"unit,omitempty"`
}

// Schema is the column layout of one CSV artifact. Every CSV the workbench
// writes goes through a schema-checked writer (CSVWriter), and every CSV an
// artifact store reads back is re-validated against the schema its manifest
// recorded (ValidateCSV).
type Schema []Column

// Header returns the column names in order.
func (s Schema) Header() []string {
	h := make([]string, len(s))
	for i, c := range s {
		h[i] = c.Name
	}
	return h
}

// CheckHeader verifies a read-back header row matches the schema exactly.
func (s Schema) CheckHeader(row []string) error {
	if len(row) != len(s) {
		return fmt.Errorf("header has %d columns, schema wants %d", len(row), len(s))
	}
	for i, c := range s {
		if row[i] != c.Name {
			return fmt.Errorf("header column %d is %q, schema wants %q", i+1, row[i], c.Name)
		}
	}
	return nil
}

// CheckRow validates one data row against the schema: the column count must
// match and every cell must parse under its column's type. line is the
// 1-based CSV line number used in error messages (line 1 is the header).
func (s Schema) CheckRow(line int, row []string) error {
	if len(row) != len(s) {
		return fmt.Errorf("row %d has %d columns, schema wants %d", line, len(row), len(s))
	}
	for i, c := range s {
		if err := c.check(row[i]); err != nil {
			return fmt.Errorf("row %d, column %q: %w", line, c.Name, err)
		}
	}
	return nil
}

// check validates one cell against the column's type.
func (c Column) check(cell string) error {
	switch c.Type {
	case ColString:
		return nil
	case ColInt:
		if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
			return fmt.Errorf("%q is not an integer", cell)
		}
	case ColFloat:
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return fmt.Errorf("%q is not a number", cell)
		}
	default:
		return fmt.Errorf("unknown column type %q", c.Type)
	}
	return nil
}

// InferSchema derives a schema from a header and the data rows: a column is
// ColInt when every cell parses as an integer, ColFloat when every cell
// parses as a number, and ColString otherwise. A column with no rows is
// ColString. The result accepts exactly the rows it was inferred from, so
// writing a table through its inferred schema can never fail, while any
// later corruption of a numeric cell is caught on re-validation.
func InferSchema(header []string, rows [][]string) Schema {
	s := make(Schema, len(header))
	for i, name := range header {
		t := ColString
		if len(rows) > 0 {
			t = ColInt
			for _, row := range rows {
				if i >= len(row) {
					t = ColString
					break
				}
				cell := row[i]
				if t == ColInt {
					if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
						continue
					}
					t = ColFloat
				}
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					t = ColString
					break
				}
			}
		}
		s[i] = Column{Name: name, Type: t}
	}
	return s
}

// WithUnits returns a copy of the schema with per-column units attached
// (missing or empty entries leave the column unitless).
func (s Schema) WithUnits(units []string) Schema {
	out := make(Schema, len(s))
	copy(out, s)
	for i := range out {
		if i < len(units) {
			out[i].Unit = units[i]
		}
	}
	return out
}

// CSVWriter is the single schema-validated CSV writer of the workbench:
// every row is checked against the schema (column count and per-cell type)
// before it is encoded, and encoding goes through encoding/csv so cells
// containing separators, quotes or newlines are escaped correctly.
type CSVWriter struct {
	cw     *csv.Writer
	schema Schema
	line   int // last line written (1 = header)
}

// NewCSVWriter starts a schema-validated CSV stream on w and writes the
// header row derived from the schema.
func NewCSVWriter(w io.Writer, schema Schema) (*CSVWriter, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("stats: CSV schema must have at least one column")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Header()); err != nil {
		return nil, err
	}
	return &CSVWriter{cw: cw, schema: schema, line: 1}, nil
}

// Write validates one data row against the schema and appends it.
func (w *CSVWriter) Write(row []string) error {
	if err := w.schema.CheckRow(w.line+1, row); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if err := w.cw.Write(row); err != nil {
		return err
	}
	w.line++
	return nil
}

// Flush drains buffered rows and reports any deferred encoding error. Call
// it once after the last row.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// WriteCSV writes a complete schema-validated CSV document: header, every
// row checked, flushed.
func WriteCSV(w io.Writer, schema Schema, rows [][]string) error {
	cw, err := NewCSVWriter(w, schema)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// ValidateCSV re-validates a CSV document against its schema: the header
// must match exactly and every row must pass CheckRow. The first violation
// is returned with its line number and column name — this is how an
// artifact store rejects corrupted or hand-edited run data.
func ValidateCSV(r io.Reader, schema Schema) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // the schema checks counts, with better errors
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("stats: reading CSV header: %w", err)
	}
	if err := schema.CheckHeader(header); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("stats: reading CSV row %d: %w", line, err)
		}
		if err := schema.CheckRow(line, row); err != nil {
			return fmt.Errorf("stats: %w", err)
		}
	}
}
