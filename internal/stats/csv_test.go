package stats

import (
	"strings"
	"testing"
)

// The escaping + validation regression path: cells carrying every CSV
// special character must survive a write → validate → read round trip, and
// a corrupted numeric cell must be rejected with an error naming the
// column.
func TestCSVWriterEscapingRoundTrip(t *testing.T) {
	schema := Schema{
		{Name: "name", Type: ColString},
		{Name: "cycles", Type: ColInt, Unit: "cyc"},
		{Name: "ratio", Type: ColFloat},
	}
	rows := [][]string{
		{`comma, inside`, "42", "0.5"},
		{`quote " inside`, "-7", "1e3"},
		{"newline\ninside", "0", "3.25"},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, schema, rows); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCSV(strings.NewReader(sb.String()), schema); err != nil {
		t.Fatalf("round trip failed validation: %v", err)
	}
	// The quoted comma must not have split the row.
	if !strings.Contains(sb.String(), `"comma, inside"`) {
		t.Errorf("comma cell not quoted:\n%s", sb.String())
	}
}

func TestCSVWriterRejectsBadRow(t *testing.T) {
	schema := Schema{{Name: "n", Type: ColInt}}
	var sb strings.Builder
	cw, err := NewCSVWriter(&sb, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write([]string{"12"}); err != nil {
		t.Fatal(err)
	}
	if err := cw.Write([]string{"12", "extra"}); err == nil ||
		!strings.Contains(err.Error(), "columns") {
		t.Errorf("wrong-width row not rejected: %v", err)
	}
	if err := cw.Write([]string{"1.5"}); err == nil ||
		!strings.Contains(err.Error(), `column "n"`) {
		t.Errorf("non-integer cell not rejected with column name: %v", err)
	}
}

func TestValidateCSVNamesCorruptedColumn(t *testing.T) {
	schema := Schema{
		{Name: "label", Type: ColString},
		{Name: "cycles", Type: ColInt},
	}
	doc := "label,cycles\nok,100\nbad,1x00\n"
	err := ValidateCSV(strings.NewReader(doc), schema)
	if err == nil {
		t.Fatal("corrupted cell accepted")
	}
	for _, want := range []string{`column "cycles"`, "row 3", "1x00"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	// A header mismatch is its own named error.
	err = ValidateCSV(strings.NewReader("label,cyc\n"), schema)
	if err == nil || !strings.Contains(err.Error(), `"cycles"`) {
		t.Errorf("header mismatch not named: %v", err)
	}
}

func TestInferSchema(t *testing.T) {
	header := []string{"name", "count", "mean", "mixed"}
	rows := [][]string{
		{"a", "1", "0.5", "1"},
		{"b", "-2", "3", "x"},
	}
	s := InferSchema(header, rows)
	want := []ColType{ColString, ColInt, ColFloat, ColString}
	for i, c := range s {
		if c.Type != want[i] {
			t.Errorf("column %q inferred %s, want %s", c.Name, c.Type, want[i])
		}
	}
	// The inferred schema must accept the rows it came from.
	for i, row := range rows {
		if err := s.CheckRow(i+2, row); err != nil {
			t.Errorf("inferred schema rejects its own row: %v", err)
		}
	}
}

// Table.RenderCSV is the workhorse every CSV caller funnels through: its
// output must re-validate against the table's own inferred schema.
func TestTableRenderCSVSelfValidates(t *testing.T) {
	tb := NewTable("op", "cycles", "ratio")
	tb.Row("load, word", int64(41), 0.25)
	tb.Row(`div "double"`, int64(31), 2.0)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	schema := tb.Schema("", "cyc", "")
	if err := ValidateCSV(strings.NewReader(sb.String()), schema); err != nil {
		t.Fatalf("rendered CSV fails own schema: %v", err)
	}
	if schema[1].Unit != "cyc" {
		t.Errorf("unit not attached: %+v", schema[1])
	}
	if schema[1].Type != ColInt || schema[2].Type != ColFloat {
		t.Errorf("inferred types wrong: %+v", schema)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.Std < 2.13 || s.Std > 2.14 { // sample std of the classic set is ~2.138
		t.Errorf("std = %v, want ~2.138", s.Std)
	}
	if one := Summarize([]float64{3}); one.Std != 0 || one.Mean != 3 {
		t.Errorf("single-value summary wrong: %+v", one)
	}
	if zero := Summarize(nil); zero.N != 0 {
		t.Errorf("empty summary wrong: %+v", zero)
	}
}
