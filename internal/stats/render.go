package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is an aligned ASCII table builder, the workhorse of the analysis
// tools' terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case a >= 1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// Render writes the table, space-aligned with a rule under the header.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for i, wd := range widths {
		total += wd
		if i > 0 {
			total += 2
		}
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// Header returns the column names.
func (t *Table) Header() []string { return t.header }

// Rows returns the formatted data rows in insertion order. The slice is the
// table's own storage; callers must not mutate it.
func (t *Table) Rows() [][]string { return t.rows }

// Schema infers the table's CSV schema from its formatted cells (see
// InferSchema), attaching the given per-column units if any.
func (t *Table) Schema(units ...string) Schema {
	return InferSchema(t.header, t.rows).WithUnits(units)
}

// RenderCSV writes the table as CSV for post-mortem analysis in external
// tools. It goes through the workbench's single schema-validated CSV writer:
// the schema is inferred from the table itself, so writing cannot fail on
// type grounds, while the artifact gains a schema any reader can re-validate
// against.
func (t *Table) RenderCSV(w io.Writer) error {
	return WriteCSV(w, t.Schema(), t.rows)
}

// RenderSet writes a metric set (and its subsets, indented) as
// "name: value unit" lines.
func RenderSet(w io.Writer, s *Set) error {
	return renderSet(w, s, 0)
}

func renderSet(w io.Writer, s *Set, depth int) error {
	indent := strings.Repeat("  ", depth)
	if _, err := fmt.Fprintf(w, "%s%s\n", indent, s.Name); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		unit := m.Unit
		if unit != "" {
			unit = " " + unit
		}
		if _, err := fmt.Fprintf(w, "%s  %-28s %s%s\n", indent, m.Name, FormatFloat(m.Value), unit); err != nil {
			return err
		}
	}
	for _, sub := range s.Subsets {
		if err := renderSet(w, sub, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// BarChart renders labelled values as a horizontal ASCII bar chart, scaled to
// width characters for the largest value.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("stats: %d labels for %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 50
	}
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	var max float64
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%s %s\n", labelW, labels[i], strings.Repeat("#", n), FormatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders a series as a compact one-line plot using block glyphs.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// RenderHistogram writes a histogram's non-empty buckets as a bar chart.
func RenderHistogram(w io.Writer, title string, h *Histogram, width int) error {
	rows := h.Buckets()
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		if r[0] == r[1] {
			labels[i] = fmt.Sprintf("%d", r[0])
		} else {
			labels[i] = fmt.Sprintf("%d-%d", r[0], r[1])
		}
		values[i] = float64(r[2])
	}
	return BarChart(w, title, labels, values, width)
}
