package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 100)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.50") {
		t.Fatalf("row wrong: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Row(1, 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1.5:     "1.50",
		123.456: "123.5",
		0.123:   "0.123",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRenderSet(t *testing.T) {
	s := NewSet("machine")
	s.Put("cycles", 1000, "cyc")
	s.Sub("node0").Put("ipc", 0.8, "")
	var sb strings.Builder
	if err := RenderSet(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"machine", "cycles", "1000 cyc", "node0", "ipc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "hits", []string{"L1", "L2"}, []float64{100, 50}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "##########") {
		t.Fatalf("largest bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
}

func TestBarChartMismatch(t *testing.T) {
	if err := BarChart(&strings.Builder{}, "t", []string{"a"}, nil, 10); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestBarChartSmallNonZeroVisible(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "t", []string{"big", "tiny"}, []float64{1000, 1}, 20); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.Contains(line, "tiny") && !strings.Contains(line, "#") {
			t.Fatal("non-zero value rendered with no bar")
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty string")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d, want 4", len([]rune(s)))
	}
	flat := Sparkline([]float64{5, 5, 5})
	runes := []rune(flat)
	if runes[0] != runes[1] || runes[1] != runes[2] {
		t.Fatal("flat series should render identical glyphs")
	}
}

func TestRenderHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 2, 3, 8, 9} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := RenderHistogram(&sb, "latency", &h, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "latency") {
		t.Fatal("title missing")
	}
	if !strings.Contains(sb.String(), "8-15") {
		t.Fatalf("bucket label missing:\n%s", sb.String())
	}
}
