// Package stats provides the measurement and analysis side of the workbench:
// counters, histograms and time series collected by the architecture models,
// plus the tabular / chart / CSV renderers that stand in for Mermaid's
// visualisation and analysis tool suite.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds d to the counter.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Ratio returns c/total as a float, or 0 when total is 0.
func Ratio(c, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Histogram accumulates int64 samples in buckets. The zero value uses the
// default power-of-two layout: bucket i holds samples in [2^(i-1), 2^i) with
// bucket 0 holding zero and negative samples. NewHistogramWithEdges builds
// one with explicit bucket bounds instead. Either way the histogram also
// tracks exact count, sum, min and max, so Mean is exact while percentiles
// are bucket-resolution estimates.
//
// Histogram is a comparable value type (no pointers or slices), so snapshots
// can be taken by plain assignment and compared with ==.
type Histogram struct {
	buckets [65]uint64
	// edges[:nedges] are the explicit ascending bucket bounds; nedges == 0
	// means the default power-of-two layout.
	edges  [maxEdges]int64
	nedges int
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// maxEdges is the most explicit bucket edges a histogram can hold: k edges
// define k+1 buckets, and the bucket array holds 65.
const maxEdges = 64

// NewHistogramWithEdges returns a histogram with an explicit bucket layout:
// for edges e0 < e1 < ... < ek, bucket 0 holds samples below e0, bucket i
// holds samples in [e(i-1), e(i)), and the last bucket holds samples at or
// above ek. It errors on empty, non-ascending, or more than 64 edges.
// Histograms with different layouts refuse to Merge.
func NewHistogramWithEdges(edges ...int64) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket edge")
	}
	if len(edges) > maxEdges {
		return nil, fmt.Errorf("stats: histogram supports at most %d edges, got %d", maxEdges, len(edges))
	}
	h := &Histogram{nedges: len(edges)}
	for i, e := range edges {
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("stats: histogram edges must be strictly ascending, got %d after %d", e, edges[i-1])
		}
		h.edges[i] = e
	}
	return h, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	h.buckets[h.bucketOf(v)]++
}

// bucketOf maps a sample to its bucket index under the histogram's layout.
func (h *Histogram) bucketOf(v int64) int {
	if h.nedges > 0 {
		// Explicit layout: the bucket index is the number of edges <= v.
		lo, hi := 0, h.nedges
		for lo < hi {
			mid := (lo + hi) / 2
			if h.edges[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	if v <= 0 {
		return 0
	}
	b := 1
	for x := v; x > 1; x >>= 1 {
		b++
	}
	if b > 64 {
		b = 64
	}
	return b
}

// sameLayout reports whether two histograms bucket their samples identically.
func (h *Histogram) sameLayout(o *Histogram) bool {
	return h.nedges == o.nedges && h.edges == o.edges
}

// Merge folds another histogram into h, bucket-wise, as if every sample
// observed by o had been observed by h: count, sum, min and max all end up
// exactly what a single histogram observing both sample streams would hold.
// A nil or empty o is a no-op; merging into a zero-value (unconfigured,
// empty) h copies o verbatim, layout included.
//
// Histograms with different bucket layouts do not merge: their buckets mean
// different ranges, and adding them cell-wise would silently corrupt every
// percentile estimate. Merge returns an error instead of mixing them.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if !h.sameLayout(o) {
		if h.count == 0 && h.nedges == 0 {
			// A blank aggregator adopts the source's layout wholesale.
			*h = *o
			return nil
		}
		return fmt.Errorf("stats: cannot merge histograms with different bucket layouts (%d vs %d explicit edges)",
			h.nedges, o.nedges)
	}
	if h.count == 0 {
		*h = *o
		return nil
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	return nil
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max return the extreme samples (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns an upper-bound estimate of the p-quantile (p in [0,1])
// at bucket resolution: the upper edge of the bucket containing it. Every
// return path clamps to the observed [min, max], so an estimate can never
// fall outside the sample range (the first non-empty bucket's upper edge may
// lie below min when min sits high inside its bucket).
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			return h.clamp(h.bucketHigh(i))
		}
	}
	return h.clamp(h.max)
}

// clamp bounds a bucket-resolution estimate to the observed sample range.
func (h *Histogram) clamp(v int64) int64 {
	if v > h.max {
		return h.max
	}
	if v < h.min {
		return h.min
	}
	return v
}

// bucketHigh returns the inclusive upper edge of bucket i under the
// histogram's layout; the open-ended last bucket reports the observed max.
func (h *Histogram) bucketHigh(i int) int64 {
	if h.nedges > 0 {
		if i < h.nedges {
			return h.edges[i] - 1
		}
		return h.max
	}
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i-1)*2 - 1
}

// bucketLow returns the inclusive lower edge of bucket i under the
// histogram's layout; the open-ended first explicit bucket reports the
// observed min.
func (h *Histogram) bucketLow(i int) int64 {
	if h.nedges > 0 {
		if i == 0 {
			return h.min
		}
		return h.edges[i-1]
	}
	if i == 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// Buckets returns the non-empty buckets as (lowEdge, highEdge, count) rows,
// for rendering.
func (h *Histogram) Buckets() [][3]int64 {
	var rows [][3]int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		rows = append(rows, [3]int64{h.bucketLow(i), h.bucketHigh(i), int64(n)})
	}
	return rows
}

// Series is a sampled time series of float64 values at int64 (virtual time)
// positions, for run-time visualisation and post-mortem plotting.
type Series struct {
	Name string
	T    []int64
	V    []float64
}

// Append adds a sample at time t.
func (s *Series) Append(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Summary computes the min/mean/max of the series values.
func (s *Series) Summary() (min, mean, max float64) {
	if len(s.V) == 0 {
		return 0, 0, 0
	}
	min, max = s.V[0], s.V[0]
	var sum float64
	for _, v := range s.V {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	return min, sum / float64(len(s.V)), max
}

// Metric is a named measurement in a report: a float value with a unit.
type Metric struct {
	Name  string
	Value float64
	Unit  string
}

// Set is an ordered collection of metrics for one component (e.g. one cache
// level, one link). Sets nest to form a full simulation report.
type Set struct {
	Name    string
	Metrics []Metric
	Subsets []*Set
}

// NewSet creates a named, empty metric set.
func NewSet(name string) *Set { return &Set{Name: name} }

// Put appends a metric (keeping insertion order; duplicate names are
// overwritten in place).
func (s *Set) Put(name string, value float64, unit string) {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			s.Metrics[i].Value = value
			s.Metrics[i].Unit = unit
			return
		}
	}
	s.Metrics = append(s.Metrics, Metric{name, value, unit})
}

// PutInt appends an integer-valued metric.
func (s *Set) PutInt(name string, value int64, unit string) {
	s.Put(name, float64(value), unit)
}

// PutUint appends an unsigned-integer metric. Counters are uint64; routing
// them through PutInt would wrap values above 2^63 to negative numbers, so
// counter-valued metrics must use this instead.
func (s *Set) PutUint(name string, value uint64, unit string) {
	s.Put(name, float64(value), unit)
}

// Get returns the named metric value; ok is false if absent.
func (s *Set) Get(name string) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// MustGet returns the named metric value, panicking if absent: use in tests
// and experiment harnesses where the metric is known to exist.
func (s *Set) MustGet(name string) float64 {
	v, ok := s.Get(name)
	if !ok {
		panic(fmt.Sprintf("stats: set %q has no metric %q", s.Name, name))
	}
	return v
}

// Sub returns (creating if needed) the named subset.
func (s *Set) Sub(name string) *Set {
	for _, sub := range s.Subsets {
		if sub.Name == name {
			return sub
		}
	}
	sub := NewSet(name)
	s.Subsets = append(s.Subsets, sub)
	return sub
}

// Lookup resolves a path like "node0/cache.L1D" through nested subsets,
// returning nil if any component is missing.
func (s *Set) Lookup(path ...string) *Set {
	cur := s
	for _, name := range path {
		var next *Set
		for _, sub := range cur.Subsets {
			if sub.Name == name {
				next = sub
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// SortSubsets orders subsets by name (natural string order); renderers call
// it for stable output when sets were built from map iteration.
func (s *Set) SortSubsets() {
	sort.Slice(s.Subsets, func(i, j int) bool { return s.Subsets[i].Name < s.Subsets[j].Name })
	for _, sub := range s.Subsets {
		sub.SortSubsets()
	}
}
