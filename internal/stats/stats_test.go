package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 4) != 0.25 {
		t.Fatal("Ratio(1,4) != 0.25")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 20 || h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Percentile(0.5)
	// True median is 500; bucket resolution gives upper edge of [512,1023]
	// or [256,511]; allow the coarse bound.
	if p50 < 500 || p50 > 1023 {
		t.Fatalf("p50 = %d, want in [500,1023]", p50)
	}
	if h.Percentile(1) != 1000 {
		t.Fatalf("p100 = %d, want clamped to max 1000", h.Percentile(1))
	}
	if h.Percentile(0) < 1 {
		t.Fatalf("p0 = %d, want >= min", h.Percentile(0))
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(0)
	h.Observe(7)
	if h.Min() != -5 || h.Max() != 7 || h.Count() != 3 {
		t.Fatal("negative/zero handling broken")
	}
	rows := h.Buckets()
	if len(rows) == 0 || rows[0][2] != 2 {
		t.Fatalf("bucket 0 should hold the two <=0 samples: %v", rows)
	}
}

// Property: mean is always within [min, max] and percentile is monotone in p.
func TestHistogramProperties(t *testing.T) {
	f := func(samples []int16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Observe(int64(s))
		}
		m := h.Mean()
		if m < float64(h.Min())-1e-9 || m > float64(h.Max())+1e-9 {
			return false
		}
		prev := int64(math.MinInt64)
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			q := h.Percentile(p)
			if q < prev {
				return false
			}
			// Bucket-resolution estimates must stay inside the sample
			// range, including when min sits above the upper edge of the
			// first non-empty bucket.
			if q < h.Min() || q > h.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(10, 3)
	s.Append(20, 2)
	min, mean, max := s.Summary()
	if min != 1 || max != 3 || mean != 2 {
		t.Fatalf("summary = %v/%v/%v", min, mean, max)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSetPutGet(t *testing.T) {
	s := NewSet("cache")
	s.Put("hits", 10, "")
	s.Put("hits", 12, "") // overwrite
	s.PutInt("misses", 3, "")
	if v, ok := s.Get("hits"); !ok || v != 12 {
		t.Fatalf("hits = %v, %v", v, ok)
	}
	if len(s.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2 (overwrite in place)", len(s.Metrics))
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent metric found")
	}
}

func TestSetMustGetPanics(t *testing.T) {
	s := NewSet("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MustGet("missing")
}

func TestSetNesting(t *testing.T) {
	root := NewSet("machine")
	root.Sub("node0").Sub("cache.L1D").Put("hit ratio", 0.95, "")
	if root.Lookup("node0", "cache.L1D") == nil {
		t.Fatal("lookup failed")
	}
	if root.Lookup("node0", "nope") != nil {
		t.Fatal("lookup of missing subset should be nil")
	}
	// Sub is idempotent.
	if root.Sub("node0") != root.Subsets[0] {
		t.Fatal("Sub created duplicate")
	}
}

func TestSortSubsets(t *testing.T) {
	root := NewSet("m")
	root.Sub("b")
	root.Sub("a")
	root.SortSubsets()
	if root.Subsets[0].Name != "a" {
		t.Fatal("not sorted")
	}
}

// Property: merging is exactly equivalent to observing both sample streams
// on one histogram — count, sum, min, max, every bucket, and therefore mean
// and percentiles all coincide.
func TestHistogramMergeProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		var ha, hb, all Histogram
		for _, v := range a {
			ha.Observe(int64(v))
			all.Observe(int64(v))
		}
		for _, v := range b {
			hb.Observe(int64(v))
			all.Observe(int64(v))
		}
		if err := ha.Merge(&hb); err != nil {
			return false
		}
		return ha == all // Histogram is comparable: buckets, count, sum, min, max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The merge property holds for explicit bucket layouts too, as long as both
// histograms share one.
func TestHistogramMergePropertyExplicitEdges(t *testing.T) {
	edges := []int64{-100, 0, 10, 50, 1000}
	f := func(a, b []int16) bool {
		ha, err1 := NewHistogramWithEdges(edges...)
		hb, err2 := NewHistogramWithEdges(edges...)
		all, err3 := NewHistogramWithEdges(edges...)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for _, v := range a {
			ha.Observe(int64(v))
			all.Observe(int64(v))
		}
		for _, v := range b {
			hb.Observe(int64(v))
			all.Observe(int64(v))
		}
		if err := ha.Merge(hb); err != nil {
			return false
		}
		return *ha == *all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Merging histograms with different bucket layouts must fail loudly instead
// of silently adding buckets that mean different ranges.
func TestHistogramMergeRejectsMismatchedLayouts(t *testing.T) {
	a, err := NewHistogramWithEdges(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHistogramWithEdges(10, 25, 30)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(5)
	b.Observe(15)
	before := *a
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched explicit layouts did not error")
	}
	if *a != before {
		t.Fatal("failed merge modified the receiver")
	}

	// Explicit vs default layout is also a mismatch, in both directions.
	var def Histogram
	def.Observe(7)
	if err := a.Merge(&def); err == nil {
		t.Fatal("merging default layout into explicit layout did not error")
	}
	if err := def.Merge(a); err == nil {
		t.Fatal("merging explicit layout into non-empty default did not error")
	}

	// An empty explicitly-configured histogram keeps its configured bounds:
	// it must not silently adopt a mismatched source either.
	c, err := NewHistogramWithEdges(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(a); err == nil {
		t.Fatal("empty explicit histogram adopted a mismatched layout")
	}

	// But a zero-value aggregator adopts the source verbatim.
	var agg Histogram
	if err := agg.Merge(a); err != nil {
		t.Fatal(err)
	}
	if agg != *a {
		t.Fatal("zero-value aggregator did not copy the explicit source")
	}
	// And same-layout merging still works after adoption.
	more, _ := NewHistogramWithEdges(10, 20, 30)
	more.Observe(25)
	if err := agg.Merge(more); err != nil {
		t.Fatalf("same-layout merge after adoption: %v", err)
	}
	if agg.Count() != 2 {
		t.Fatalf("count = %d, want 2", agg.Count())
	}
}

// NewHistogramWithEdges validates its layout up front.
func TestNewHistogramWithEdgesValidation(t *testing.T) {
	if _, err := NewHistogramWithEdges(); err == nil {
		t.Error("empty edges accepted")
	}
	if _, err := NewHistogramWithEdges(3, 3); err == nil {
		t.Error("duplicate edges accepted")
	}
	if _, err := NewHistogramWithEdges(5, 1); err == nil {
		t.Error("descending edges accepted")
	}
	tooMany := make([]int64, 65)
	for i := range tooMany {
		tooMany[i] = int64(i)
	}
	if _, err := NewHistogramWithEdges(tooMany...); err == nil {
		t.Error("65 edges accepted")
	}
}

// Explicit buckets place samples by [e(i-1), e(i)) intervals, and the
// rendering and percentile paths respect those bounds.
func TestHistogramExplicitEdgesBucketing(t *testing.T) {
	h, err := NewHistogramWithEdges(0, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{-5, 0, 9, 10, 99, 100, 5000} {
		h.Observe(v)
	}
	rows := h.Buckets()
	// Buckets: (-inf,0) -> {-5}; [0,10) -> {0,9}; [10,100) -> {10,99};
	// [100,inf) -> {100,5000}.
	wantCounts := []int64{1, 2, 2, 2}
	if len(rows) != len(wantCounts) {
		t.Fatalf("got %d bucket rows (%v), want %d", len(rows), rows, len(wantCounts))
	}
	for i, row := range rows {
		if row[2] != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d (%v)", i, row[2], wantCounts[i], rows)
		}
	}
	// The open-ended outer buckets clamp to observed extremes.
	if rows[0][0] != -5 || rows[len(rows)-1][1] != 5000 {
		t.Errorf("outer bucket edges = %d/%d, want -5/5000", rows[0][0], rows[len(rows)-1][1])
	}
	// Percentile stays inside [min, max] and respects bucket upper edges.
	if p := h.Percentile(0.5); p < h.Min() || p > h.Max() {
		t.Errorf("p50 = %d outside [%d, %d]", p, h.Min(), h.Max())
	}
	// p0 lands in the first bucket: its upper edge is edges[0]-1 = -1, which
	// already lies inside [min, max] so no clamping applies.
	if p := h.Percentile(0); p != -1 {
		t.Errorf("p0 = %d, want -1 (upper edge of the first bucket)", p)
	}
	if p := h.Percentile(1); p != 5000 {
		t.Errorf("p100 = %d, want 5000 (clamped to max)", p)
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(3)
	before := h
	h.Merge(nil)
	if h != before {
		t.Error("Merge(nil) changed the histogram")
	}
	var empty Histogram
	h.Merge(&empty)
	if h != before {
		t.Error("merging an empty histogram changed the receiver")
	}
	// Merging into an empty histogram copies the source verbatim.
	var dst Histogram
	dst.Merge(&h)
	if dst != h {
		t.Error("merge into empty is not a copy")
	}
	// The source must be left untouched.
	var src Histogram
	src.Observe(-2)
	srcBefore := src
	dst.Merge(&src)
	if src != srcBefore {
		t.Error("Merge mutated its argument")
	}
	if dst.Min() != -2 || dst.Max() != 3 || dst.Count() != 2 {
		t.Errorf("merged min/max/count = %d/%d/%d, want -2/3/2", dst.Min(), dst.Max(), dst.Count())
	}
}
