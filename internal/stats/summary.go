package stats

import "math"

// Summary is the grouped aggregate of repeated measurements — the mean/std/
// min/max block the experiment pipeline reports per (experiment, metric)
// group across replicas.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes the summary of a sample in slice order (the order is
// fixed by the caller, so the floating-point result is deterministic). Std
// is the sample standard deviation (n-1 denominator); it is 0 for fewer
// than two values.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, v := range values {
			d := v - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}
