// Package stochastic is the stochastic trace generator of the workbench
// (§3): it turns a probabilistic application description into realistic
// synthetic operation traces, representing the behaviour of a class of
// applications with modest accuracy — useful for fast prototyping of new
// architectures, and easy to re-parameterise.
//
// A description is a sequence of phases, repeated for a number of
// iterations. Each phase generates computation — at the abstract-instruction
// level (operation mix plus a memory-reference model) or at the task level
// (compute durations) — followed by a communication pattern whose sends and
// receives are generated consistently across all nodes, so the resulting
// multi-node traces are well-formed.
package stochastic

import (
	"fmt"

	"mermaid/internal/ops"
	"mermaid/internal/pearl"
	"mermaid/internal/trace"
)

// Level selects the abstraction level of the generated computation.
type Level uint8

const (
	// InstructionLevel generates abstract machine instructions for the
	// single-node computational model.
	InstructionLevel Level = iota
	// TaskLevel generates compute(duration) events for the multi-node model
	// directly (the fast-prototyping path of Fig. 4).
	TaskLevel
)

// String returns the level name.
func (l Level) String() string {
	if l == TaskLevel {
		return "task"
	}
	return "instruction"
}

// Mix gives the relative frequencies of the instruction categories in a
// computational phase. Every generated instruction is preceded by its
// instruction fetch.
type Mix struct {
	Load     float64
	Store    float64
	IntArith float64
	FltArith float64
	Branch   float64
}

// DefaultMix is a typical scientific-code mix.
func DefaultMix() Mix {
	return Mix{Load: 0.25, Store: 0.10, IntArith: 0.30, FltArith: 0.25, Branch: 0.10}
}

func (m Mix) weights() []float64 {
	return []float64{m.Load, m.Store, m.IntArith, m.FltArith, m.Branch}
}

// MemModel describes the data-reference stream of a phase.
type MemModel struct {
	// Base is the first data address.
	Base uint64
	// WorkingSet is the span of addresses touched, in bytes.
	WorkingSet uint64
	// Stride, when non-zero, generates sequential strided references;
	// when zero, references are uniform over the working set.
	Stride uint64
	// Access is the reference width.
	Access ops.MemType
}

// DefaultMem is a 64 KiB uniformly accessed working set of words.
func DefaultMem() MemModel {
	return MemModel{Base: 0x1000_0000, WorkingSet: 64 << 10, Access: ops.MemWord}
}

// PatternKind names a communication pattern.
type PatternKind string

// Supported communication patterns.
const (
	None            PatternKind = "none"
	NearestNeighbor PatternKind = "nearest"  // ring-style: send to rank+1, receive from rank-1
	Exchange        PatternKind = "exchange" // pairwise with partner rank^1
	AllToAll        PatternKind = "alltoall"
	Hotspot         PatternKind = "hotspot" // everyone sends to node 0
	RandomPairs     PatternKind = "random"  // a random permutation each iteration
)

// Comm describes the communication closing a phase.
type Comm struct {
	Pattern PatternKind
	// Bytes is the mean message size; actual sizes are exponential around
	// the mean when Jitter is true, fixed otherwise.
	Bytes  uint32
	Jitter bool
	// Async selects asend/arecv instead of the synchronous pair.
	Async bool
}

// Phase is one compute-then-communicate unit of the description.
type Phase struct {
	Name string
	// Instructions is the mean number of instructions per node (instruction
	// level); Duration is the mean compute time (task level).
	Instructions int64
	Duration     int64
	// CV is the coefficient of variation of the computation amount across
	// nodes and iterations (0 = deterministic). Load imbalance, in effect.
	CV   float64
	Mix  Mix
	Mem  MemModel
	Comm Comm
}

// Desc is a complete stochastic application description.
type Desc struct {
	Name       string
	Nodes      int
	Level      Level
	Seed       uint64
	Iterations int
	Phases     []Phase
}

// Validate checks the description.
func (d *Desc) Validate() error {
	if d.Nodes < 1 {
		return fmt.Errorf("stochastic: %d nodes", d.Nodes)
	}
	if d.Iterations < 1 {
		return fmt.Errorf("stochastic: %d iterations", d.Iterations)
	}
	if len(d.Phases) == 0 {
		return fmt.Errorf("stochastic: no phases")
	}
	for i := range d.Phases {
		ph := &d.Phases[i]
		switch d.Level {
		case InstructionLevel:
			if ph.Instructions < 0 {
				return fmt.Errorf("stochastic: phase %d negative instructions", i)
			}
		case TaskLevel:
			if ph.Duration < 0 {
				return fmt.Errorf("stochastic: phase %d negative duration", i)
			}
		default:
			return fmt.Errorf("stochastic: unknown level %d", d.Level)
		}
		switch ph.Comm.Pattern {
		case None, NearestNeighbor, Exchange, AllToAll, Hotspot, RandomPairs, "":
		default:
			return fmt.Errorf("stochastic: phase %d unknown pattern %q", i, ph.Comm.Pattern)
		}
		if ph.Comm.Pattern != None && ph.Comm.Pattern != "" && ph.Comm.Bytes == 0 {
			return fmt.Errorf("stochastic: phase %d communication with zero bytes", i)
		}
		if ph.CV < 0 {
			return fmt.Errorf("stochastic: phase %d negative CV", i)
		}
	}
	return nil
}

// Generate produces the complete per-node traces for the description.
func Generate(d Desc) ([][]ops.Op, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := &generator{d: d, rng: pearl.NewRNG(d.Seed)}
	traces := make([][]ops.Op, d.Nodes)
	for iter := 0; iter < d.Iterations; iter++ {
		for pi := range d.Phases {
			g.phase(traces, iter, &d.Phases[pi])
		}
	}
	return traces, nil
}

// Sources generates the traces and wraps them as per-node Sources.
func Sources(d Desc) ([]trace.Source, error) {
	tr, err := Generate(d)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Source, len(tr))
	for i := range tr {
		out[i] = trace.FromOps(tr[i])
	}
	return out, nil
}

type generator struct {
	d    Desc
	rng  *pearl.RNG
	pc   uint64
	tick uint64
}

// amount draws the per-node computation amount with the phase's CV.
func (g *generator) amount(mean int64, cv float64) int64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	v := float64(mean) * (1 + cv*g.rng.NormFloat64())
	if v < 0 {
		return 0
	}
	return int64(v)
}

func (g *generator) phase(traces [][]ops.Op, iter int, ph *Phase) {
	for node := range traces {
		switch g.d.Level {
		case InstructionLevel:
			g.computeInstr(&traces[node], node, ph)
		case TaskLevel:
			dur := g.amount(ph.Duration, ph.CV)
			traces[node] = append(traces[node], ops.NewCompute(dur))
		}
	}
	g.comm(traces, iter, ph)
}

func (g *generator) computeInstr(tr *[]ops.Op, node int, ph *Phase) {
	n := g.amount(ph.Instructions, ph.CV)
	mix := ph.Mix
	if mix == (Mix{}) {
		mix = DefaultMix()
	}
	mem := ph.Mem
	if mem.WorkingSet == 0 {
		mem = DefaultMem()
	}
	if mem.Access == ops.MemNone {
		mem.Access = ops.MemWord
	}
	weights := mix.weights()
	// Model a loop of period ~64 instructions: recurring fetch addresses.
	const loopBody = 64
	loopBase := g.pcBase(node)
	var cursor uint64
	for i := int64(0); i < n; i++ {
		pc := loopBase + uint64(i%loopBody)*4
		*tr = append(*tr, ops.NewIFetch(pc))
		switch g.rng.WeightedChoice(weights) {
		case 0:
			*tr = append(*tr, ops.NewLoad(mem.Access, g.dataAddr(&mem, &cursor, node)))
		case 1:
			*tr = append(*tr, ops.NewStore(mem.Access, g.dataAddr(&mem, &cursor, node)))
		case 2:
			*tr = append(*tr, ops.NewArith(g.intKind(), ops.TypeInt))
		case 3:
			*tr = append(*tr, ops.NewArith(g.fltKind(), ops.TypeDouble))
		case 4:
			*tr = append(*tr, ops.NewBranch(loopBase))
		}
	}
}

// pcBase gives each node a stable code region.
func (g *generator) pcBase(node int) uint64 {
	return 0x0040_0000 + uint64(node)*0x1_0000
}

func (g *generator) dataAddr(mem *MemModel, cursor *uint64, node int) uint64 {
	span := mem.WorkingSet
	if span == 0 {
		span = 1
	}
	base := mem.Base + uint64(node)*span // per-node address space separation
	if mem.Stride > 0 {
		a := base + *cursor
		*cursor = (*cursor + mem.Stride) % span
		return a
	}
	sz := mem.Access.Size()
	slots := span / sz
	if slots == 0 {
		slots = 1
	}
	return base + uint64(g.rng.Int63n(int64(slots)))*sz
}

func (g *generator) intKind() ops.Kind {
	ks := []ops.Kind{ops.Add, ops.Add, ops.Sub, ops.Mul} // div rare
	return ks[g.rng.Intn(len(ks))]
}

func (g *generator) fltKind() ops.Kind {
	ks := []ops.Kind{ops.Add, ops.Mul, ops.Sub, ops.Div}
	return ks[g.rng.Intn(len(ks))]
}

func (g *generator) msgBytes(c *Comm) uint32 {
	if !c.Jitter {
		return c.Bytes
	}
	v := uint32(float64(c.Bytes) * g.rng.ExpFloat64())
	if v == 0 {
		v = 1
	}
	return v
}

// comm appends a well-formed communication pattern: every send has a
// matching receive with the same tag, and synchronous (rendezvous) rounds
// are ordered so they cannot deadlock — within each permutation round, the
// lower-ranked endpoint sends first and the higher-ranked one receives
// first, which breaks every wait cycle at its maximum element.
func (g *generator) comm(traces [][]ops.Op, _ int, ph *Phase) {
	c := &ph.Comm
	n := len(traces)
	if c.Pattern == None || c.Pattern == "" || n < 2 {
		return
	}
	switch c.Pattern {
	case NearestNeighbor:
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i + 1) % n
		}
		g.permRound(traces, c, perm)
	case Exchange:
		perm := make([]int, n)
		for i := range perm {
			if p := i ^ 1; p < n {
				perm[i] = p
			} else {
				perm[i] = i
			}
		}
		g.permRound(traces, c, perm)
	case AllToAll:
		// Pairwise exchange rounds: partner = rank XOR r. Every round is a
		// set of disjoint pairs, so each round is trivially deadlock-free,
		// and r = i^j eventually pairs every (i, j).
		npow := 1
		for npow < n {
			npow <<= 1
		}
		for r := 1; r < npow; r++ {
			perm := make([]int, n)
			for i := range perm {
				if p := i ^ r; p < n {
					perm[i] = p
				} else {
					perm[i] = i
				}
			}
			g.permRound(traces, c, perm)
		}
	case Hotspot:
		g.tick++
		tag := uint32(g.tick)
		for i := 1; i < n; i++ {
			b := g.msgBytes(c)
			g.emitSend(traces, c, i, 0, b, tag)
		}
		for i := 1; i < n; i++ {
			g.emitRecv(traces, c, i, 0, tag)
		}
	case RandomPairs:
		perm := g.rng.Perm(n)
		for isIdentity(perm) {
			perm = g.rng.Perm(n) // identity would mean no communication
		}
		g.permRound(traces, c, perm)
	}
}

func isIdentity(perm []int) bool {
	for i, p := range perm {
		if i != p {
			return false
		}
	}
	return true
}

// permRound emits one permutation round: node i sends to perm[i] and
// receives from its inverse image. Lower rank sends first.
func (g *generator) permRound(traces [][]ops.Op, c *Comm, perm []int) {
	n := len(perm)
	g.tick++
	tag := uint32(g.tick)
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	sizes := make([]uint32, n)
	for i := range sizes {
		sizes[i] = g.msgBytes(c)
	}
	for i := 0; i < n; i++ {
		to, from := perm[i], inv[i]
		if to == i {
			continue
		}
		if i < to {
			g.emitSend(traces, c, i, to, sizes[i], tag)
			g.emitRecv(traces, c, from, i, tag)
		} else {
			g.emitRecv(traces, c, from, i, tag)
			g.emitSend(traces, c, i, to, sizes[i], tag)
		}
	}
}

// emitSend appends the sending side of one transfer to the sender's trace.
func (g *generator) emitSend(traces [][]ops.Op, c *Comm, from, to int, bytes uint32, tag uint32) {
	if c.Async {
		traces[from] = append(traces[from], ops.NewASend(bytes, int32(to), tag))
	} else {
		traces[from] = append(traces[from], ops.NewSend(bytes, int32(to), tag))
	}
}

// emitRecv appends the receiving side of the transfer from -> to.
func (g *generator) emitRecv(traces [][]ops.Op, c *Comm, from, to int, tag uint32) {
	if c.Async {
		ar := ops.NewARecv(int32(from), tag)
		ar.Addr = uint64(tag)<<20 | uint64(from) // unique handle per (round, source)
		traces[to] = append(traces[to], ar, ops.NewWaitRecv(ar.Addr))
	} else {
		traces[to] = append(traces[to], ops.NewRecv(int32(from), tag))
	}
}

// MarshalJSON encodes the level by name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON decodes "instruction" or "task".
func (l *Level) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"instruction"`, `""`:
		*l = InstructionLevel
	case `"task"`:
		*l = TaskLevel
	default:
		return fmt.Errorf("stochastic: unknown level %s", b)
	}
	return nil
}
