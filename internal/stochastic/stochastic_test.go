package stochastic

import (
	"testing"
	"testing/quick"

	"mermaid/internal/network"
	"mermaid/internal/ops"
	"mermaid/internal/pearl"
	"mermaid/internal/router"
	"mermaid/internal/sim"
	"mermaid/internal/topology"
)

func simpleDesc(nodes int, level Level, pattern PatternKind) Desc {
	return Desc{
		Name:       "test",
		Nodes:      nodes,
		Level:      level,
		Seed:       42,
		Iterations: 2,
		Phases: []Phase{{
			Name:         "main",
			Instructions: 200,
			Duration:     1000,
			Comm:         Comm{Pattern: pattern, Bytes: 256},
		}},
	}
}

func TestValidate(t *testing.T) {
	good := simpleDesc(4, TaskLevel, NearestNeighbor)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Desc{
		{Nodes: 0, Iterations: 1, Phases: []Phase{{}}},
		{Nodes: 2, Iterations: 0, Phases: []Phase{{}}},
		{Nodes: 2, Iterations: 1},
		{Nodes: 2, Iterations: 1, Phases: []Phase{{Comm: Comm{Pattern: "bogus", Bytes: 1}}}},
		{Nodes: 2, Iterations: 1, Phases: []Phase{{Comm: Comm{Pattern: AllToAll}}}}, // zero bytes
		{Nodes: 2, Iterations: 1, Phases: []Phase{{CV: -1}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("desc %d: expected error", i)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	d := simpleDesc(4, InstructionLevel, NearestNeighbor)
	a, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(d)
	for n := range a {
		if len(a[n]) != len(b[n]) {
			t.Fatalf("node %d lengths differ", n)
		}
		for i := range a[n] {
			if a[n][i] != b[n][i] {
				t.Fatalf("node %d op %d differs", n, i)
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	d := simpleDesc(2, InstructionLevel, None)
	a, _ := Generate(d)
	d.Seed = 43
	b, _ := Generate(d)
	same := true
	if len(a[0]) != len(b[0]) {
		same = false
	} else {
		for i := range a[0] {
			if a[0][i] != b[0][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// sendRecvBalance verifies every send has exactly one matching recv.
func sendRecvBalance(t *testing.T, traces [][]ops.Op) {
	t.Helper()
	type key struct {
		from, to int32
		tag      uint32
	}
	sends := map[key]int{}
	recvs := map[key]int{}
	for nodeID, tr := range traces {
		for _, o := range tr {
			switch o.Kind {
			case ops.Send, ops.ASend:
				sends[key{int32(nodeID), o.Peer, o.Tag}]++
			case ops.Recv, ops.ARecv:
				recvs[key{o.Peer, int32(nodeID), o.Tag}]++
			}
		}
	}
	if len(sends) == 0 {
		t.Fatal("no sends generated")
	}
	for k, n := range sends {
		if recvs[k] != n {
			t.Fatalf("unbalanced %v: %d sends, %d recvs", k, n, recvs[k])
		}
	}
	for k, n := range recvs {
		if sends[k] != n {
			t.Fatalf("recv without send %v (%d)", k, n)
		}
	}
}

func TestPatternsBalanced(t *testing.T) {
	for _, pat := range []PatternKind{NearestNeighbor, Exchange, AllToAll, Hotspot, RandomPairs} {
		for _, nodes := range []int{2, 3, 4, 7, 8} {
			d := simpleDesc(nodes, TaskLevel, pat)
			traces, err := Generate(d)
			if err != nil {
				t.Fatalf("%s/%d: %v", pat, nodes, err)
			}
			sendRecvBalance(t, traces)
		}
	}
}

func TestAllToAllCoversAllPairs(t *testing.T) {
	d := simpleDesc(5, TaskLevel, AllToAll)
	d.Iterations = 1
	traces, _ := Generate(d)
	pairs := map[[2]int]bool{}
	for nodeID, tr := range traces {
		for _, o := range tr {
			if o.Kind == ops.Send {
				pairs[[2]int{nodeID, int(o.Peer)}] = true
			}
		}
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && !pairs[[2]int{i, j}] {
				t.Fatalf("pair %d->%d missing", i, j)
			}
		}
	}
}

func TestInstructionLevelContent(t *testing.T) {
	d := simpleDesc(2, InstructionLevel, None)
	d.Phases[0].Instructions = 1000
	traces, _ := Generate(d)
	var fetches, mem, arith int
	for _, o := range traces[0] {
		switch {
		case o.Kind == ops.IFetch:
			fetches++
		case o.Kind.IsMemoryAccess():
			mem++
		case o.Kind.IsArithmetic():
			arith++
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("invalid op: %v", err)
		}
	}
	if fetches != 2000 { // 1000 instructions x 2 iterations
		t.Fatalf("fetches = %d, want 2000", fetches)
	}
	if mem == 0 || arith == 0 {
		t.Fatalf("mix degenerate: mem=%d arith=%d", mem, arith)
	}
	// Default mix: ~35%% memory ops.
	frac := float64(mem) / 2000
	if frac < 0.25 || frac > 0.45 {
		t.Fatalf("memory fraction = %v, want ~0.35", frac)
	}
}

func TestStridedMemoryModel(t *testing.T) {
	d := simpleDesc(1, InstructionLevel, None)
	d.Phases[0].Mix = Mix{Load: 1}
	d.Phases[0].Mem = MemModel{Base: 0x1000, WorkingSet: 1024, Stride: 8, Access: ops.MemDouble}
	d.Iterations = 1
	d.Phases[0].Instructions = 10
	traces, _ := Generate(d)
	var addrs []uint64
	for _, o := range traces[0] {
		if o.Kind == ops.Load {
			addrs = append(addrs, o.Addr)
		}
	}
	if len(addrs) != 10 {
		t.Fatalf("loads = %d", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+8 {
			t.Fatalf("stride broken at %d: %#x -> %#x", i, addrs[i-1], addrs[i])
		}
	}
}

func TestLoadImbalanceCV(t *testing.T) {
	d := simpleDesc(16, TaskLevel, None)
	d.Phases[0].CV = 0.5
	d.Iterations = 1
	traces, _ := Generate(d)
	distinct := map[int64]bool{}
	for _, tr := range traces {
		for _, o := range tr {
			if o.Kind == ops.Compute {
				distinct[o.Dur] = true
			}
		}
	}
	if len(distinct) < 8 {
		t.Fatalf("CV=0.5 produced only %d distinct durations", len(distinct))
	}
	// CV=0 is deterministic.
	d.Phases[0].CV = 0
	traces, _ = Generate(d)
	for _, tr := range traces {
		for _, o := range tr {
			if o.Kind == ops.Compute && o.Dur != 1000 {
				t.Fatalf("CV=0 duration = %d, want 1000", o.Dur)
			}
		}
	}
}

// All sync patterns must simulate to completion on a real network
// (deadlock-freedom of the generated rendezvous ordering).
func TestSyncPatternsRunToCompletion(t *testing.T) {
	for _, pat := range []PatternKind{NearestNeighbor, Exchange, AllToAll, Hotspot, RandomPairs} {
		for _, nodes := range []int{2, 3, 5, 8} {
			pat, nodes := pat, nodes
			t.Run(string(pat), func(t *testing.T) {
				d := simpleDesc(nodes, TaskLevel, pat)
				srcs, err := Sources(d)
				if err != nil {
					t.Fatal(err)
				}
				k := pearl.NewKernel()
				net, err := network.New(sim.Env{Kernel: k}, network.Config{
					Topology: topology.Config{Kind: topology.Ring, Nodes: nodes},
					Router:   router.Config{Switching: router.StoreAndForward, RoutingDelay: 1, MaxPacket: 1024},
					Link:     network.LinkConfig{BytesPerCycle: 4, PropDelay: 1},
					AckBytes: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				var procs []*network.Processor
				for i := 0; i < nodes; i++ {
					pr := network.NewProcessor(net.Node(i), srcs[i])
					pr.Spawn(k)
					procs = append(procs, pr)
				}
				k.Run()
				for i, pr := range procs {
					if pr.Err() != nil {
						t.Fatalf("node %d: %v", i, pr.Err())
					}
					if !pr.Done() {
						t.Fatalf("node %d deadlocked (pattern %s)", i, pat)
					}
				}
			})
		}
	}
}

func TestAsyncPattern(t *testing.T) {
	d := simpleDesc(4, TaskLevel, AllToAll)
	d.Phases[0].Comm.Async = true
	traces, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	var asends, arecvs, waits int
	for _, tr := range traces {
		for _, o := range tr {
			switch o.Kind {
			case ops.ASend:
				asends++
			case ops.ARecv:
				arecvs++
			case ops.WaitRecv:
				waits++
			}
		}
	}
	if asends == 0 || arecvs != asends || waits != arecvs {
		t.Fatalf("asends=%d arecvs=%d waits=%d", asends, arecvs, waits)
	}
}

// Property: generation never produces invalid operations and always balances
// sends and recvs, across random node counts, patterns and seeds.
func TestGenerateProperty(t *testing.T) {
	pats := []PatternKind{None, NearestNeighbor, Exchange, AllToAll, Hotspot, RandomPairs}
	f := func(seed uint64, n8, p8, async8 uint8) bool {
		nodes := int(n8%7) + 2
		d := Desc{
			Nodes: nodes, Level: TaskLevel, Seed: seed, Iterations: 2,
			Phases: []Phase{{
				Duration: 100,
				CV:       0.3,
				Comm:     Comm{Pattern: pats[int(p8)%len(pats)], Bytes: 64, Async: async8%2 == 0, Jitter: true},
			}},
		}
		traces, err := Generate(d)
		if err != nil {
			return false
		}
		for _, tr := range traces {
			for _, o := range tr {
				if o.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
