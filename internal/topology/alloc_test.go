package topology

import "testing"

// The per-hop routing loop — Route, Neighbor, PortDim, Dateline,
// MinimalPorts consumption via NeighborsInto — must not allocate: it runs
// once per packet per hop, millions of times in a large run, and any
// allocation here dominates the profile. This gate walks a full route on
// every family with the exact call mix of network.attemptForward.
func TestAllocFreeRoutingHotLoop(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	mk := func(tp Topology, err error) Topology {
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	tops := []Topology{
		mk(NewRing(16)),
		mk(NewMesh(4, 4)),
		mk(NewTorus(4, 4)),
		mk(NewHypercube(16)),
		mk(NewTorus3D(4, 4, 4)),
		mk(NewFatTree(4, 3)),
		mk(NewDragonfly(4, 2, 9)),
	}
	for _, tp := range tops {
		tp := tp
		n := tp.Nodes()
		buf := make([]int, 0, tp.Degree())
		sink := 0
		if got := testing.AllocsPerRun(100, func() {
			// A far-apart pair walked hop by hop, touching every query the
			// forward loop issues per hop.
			at, to := 0, n-1
			for at != to {
				port := tp.Route(at, to)
				if tp.Dateline(at, port) {
					sink += tp.PortDim(port)
				}
				buf = NeighborsInto(tp, at, buf)
				sink += buf[port]
				at = tp.Neighbor(at, port)
			}
		}); got != 0 {
			t.Errorf("%s: routing hot loop allocates %.1f/run, want 0", tp.Name(), got)
		}
		_ = sink
	}
}
