package topology

import "fmt"

// Hierarchical / large-machine topology families. All three are pure
// generators: the wiring and the routing function are closed-form in the
// node id, so a million-node machine is a handful of integers and every
// Route/Neighbor/Dateline query is O(1) with zero allocation.

// maxTopologyNodes bounds generator sizes so id arithmetic stays well inside
// int range on every platform.
const maxTopologyNodes = 1 << 30

// 3-D torus -----------------------------------------------------------------

// Ports: 0 = +x, 1 = -x, 2 = +y, 3 = -y, 4 = +z, 5 = -z.
type torus3d struct {
	x, y, z int
}

// NewTorus3D builds an x*y*z 3-D torus with dimension-order (XYZ) routing,
// each dimension taking the shorter way around, and per-dimension datelines
// at the wrap edges (Dally–Seitz virtual-channel deadlock avoidance, as on
// the 2-D torus).
func NewTorus3D(x, y, z int) (Topology, error) {
	if x < 2 || y < 2 || z < 2 {
		return nil, fmt.Errorf("topology: torus3d %dx%dx%d needs every dimension >= 2 (fields DimX, DimY, DimZ)", x, y, z)
	}
	if x > maxTopologyNodes/y || x*y > maxTopologyNodes/z {
		return nil, fmt.Errorf("topology: torus3d %dx%dx%d exceeds %d nodes", x, y, z, maxTopologyNodes)
	}
	return &torus3d{x, y, z}, nil
}

func (t *torus3d) Name() string { return fmt.Sprintf("torus3d(%dx%dx%d)", t.x, t.y, t.z) }
func (t *torus3d) Nodes() int   { return t.x * t.y * t.z }
func (t *torus3d) Degree() int  { return 6 }

func (t *torus3d) coords(node int) (x, y, z int) {
	return node % t.x, (node / t.x) % t.y, node / (t.x * t.y)
}
func (t *torus3d) id(x, y, z int) int { return (z*t.y+y)*t.x + x }

func (t *torus3d) Neighbor(node, port int) int {
	x, y, z := t.coords(node)
	switch port {
	case 0:
		return t.id((x+1)%t.x, y, z)
	case 1:
		return t.id((x-1+t.x)%t.x, y, z)
	case 2:
		return t.id(x, (y+1)%t.y, z)
	case 3:
		return t.id(x, (y-1+t.y)%t.y, z)
	case 4:
		return t.id(x, y, (z+1)%t.z)
	case 5:
		return t.id(x, y, (z-1+t.z)%t.z)
	}
	return -1
}

func (t *torus3d) Neighbors(node int) []int {
	nb := make([]int, 6)
	for p := 0; p < 6; p++ {
		nb[p] = t.Neighbor(node, p)
	}
	return nb
}

// Route corrects x, then y, then z, taking the shorter way around each ring.
func (t *torus3d) Route(at, to int) int {
	ax, ay, az := t.coords(at)
	tx, ty, tz := t.coords(to)
	if ax != tx {
		return ringPort(ax, tx, t.x, 0, 1)
	}
	if ay != ty {
		return ringPort(ay, ty, t.y, 2, 3)
	}
	if az != tz {
		return ringPort(az, tz, t.z, 4, 5)
	}
	panic("topology: Route(at, at)")
}

// ringPort picks the shorter direction around a size-wide ring, preferring
// the positive port on ties.
func ringPort(a, t, size, pos, neg int) int {
	fwd := (t - a + size) % size
	if fwd <= size-fwd {
		return pos
	}
	return neg
}

func (t *torus3d) MinimalPorts(at, to int) []int {
	ax, ay, az := t.coords(at)
	tx, ty, tz := t.coords(to)
	var out []int
	addDim := func(a, tc, size, pos, neg int) {
		if a == tc {
			return
		}
		fwd := (tc - a + size) % size
		if fwd*2 == size {
			out = append(out, pos, neg)
		} else if fwd < size-fwd {
			out = append(out, pos)
		} else {
			out = append(out, neg)
		}
	}
	addDim(ax, tx, t.x, 0, 1)
	addDim(ay, ty, t.y, 2, 3)
	addDim(az, tz, t.z, 4, 5)
	return out
}

func (t *torus3d) Dims() int            { return 3 }
func (t *torus3d) PortDim(port int) int { return port / 2 }
func (t *torus3d) Dateline(node, port int) bool {
	x, y, z := t.coords(node)
	switch port {
	case 0:
		return x == t.x-1
	case 1:
		return x == 0
	case 2:
		return y == t.y-1
	case 3:
		return y == 0
	case 4:
		return z == t.z-1
	case 5:
		return z == 0
	}
	return false
}

// k-ary fat-tree ------------------------------------------------------------

// A k-ary fat-tree with L switch levels, modelled as a direct network (every
// host and every switch is a machine node, as in the workbench node model):
//
//   - hosts are nodes [0, k^L); a host id is L base-k digits;
//   - each switch level l in 1..L has k^(L-1) switches (L-1 base-k digits),
//     numbered after the hosts level by level;
//   - a level-l switch s has k down ports (port j in [0,k)) and, below the
//     top level, k up ports (port k+j). Down port j of a level-1 switch
//     leads to host s*k+j; down port j of a higher switch replaces digit
//     l-2 of s with j; up port k+j replaces digit l-1 with j. Hosts have a
//     single up port 0.
//
// Routing is up*/down*: climb — choosing the destination's digit, so the
// scheme is deterministic destination-based ECMP — until the switch index
// matches the destination's column on every digit the remaining descent
// cannot correct, then descend. Up/down routing is acyclic, so no
// virtual-channel datelines are needed and wormhole switching is
// deadlock-free. Arity must be a power of two so digit arithmetic is
// shift/mask on the hot path.
type fattree struct {
	k, levels int
	shift     uint // log2(k)
	hosts     int  // k^levels
	perLevel  int  // k^(levels-1) switches per level
}

// NewFatTree builds a k-ary fat-tree with `levels` switch tiers.
func NewFatTree(arity, levels int) (Topology, error) {
	if arity < 2 || arity&(arity-1) != 0 {
		return nil, fmt.Errorf("topology: fattree arity must be a power of two >= 2, got %d (field Arity)", arity)
	}
	if levels < 1 {
		return nil, fmt.Errorf("topology: fattree needs >= 1 switch level, got %d (field Levels)", levels)
	}
	shift := uint(0)
	for x := arity; x > 1; x >>= 1 {
		shift++
	}
	hosts := 1
	for i := 0; i < levels; i++ {
		if hosts > maxTopologyNodes/arity {
			return nil, fmt.Errorf("topology: fattree arity=%d levels=%d exceeds %d hosts (fields Arity, Levels)", arity, levels, maxTopologyNodes)
		}
		hosts *= arity
	}
	return &fattree{k: arity, levels: levels, shift: shift, hosts: hosts, perLevel: hosts / arity}, nil
}

func (f *fattree) Name() string { return fmt.Sprintf("fattree(k=%d,l=%d)", f.k, f.levels) }
func (f *fattree) Nodes() int   { return f.hosts + f.levels*f.perLevel }
func (f *fattree) Degree() int  { return 2 * f.k }

// locate splits a node id into (level, index): level 0 is the host plane.
func (f *fattree) locate(node int) (level, idx int) {
	if node < f.hosts {
		return 0, node
	}
	r := node - f.hosts
	return r/f.perLevel + 1, r % f.perLevel
}

// swid is the inverse of locate for switch planes.
func (f *fattree) swid(level, idx int) int { return f.hosts + (level-1)*f.perLevel + idx }

func (f *fattree) digit(idx, pos int) int {
	return (idx >> (uint(pos) * f.shift)) & (f.k - 1)
}
func (f *fattree) setDigit(idx, pos, v int) int {
	sh := uint(pos) * f.shift
	return idx&^((f.k-1)<<sh) | v<<sh
}

// maxDiffDigit returns the highest digit position where a and b differ, or
// -1 when they are equal.
func (f *fattree) maxDiffDigit(a, b int) int {
	d := a ^ b
	m := -1
	for d != 0 {
		m++
		d >>= f.shift
	}
	return m
}

func (f *fattree) Neighbor(node, port int) int {
	level, idx := f.locate(node)
	switch {
	case level == 0: // host: single up port to its leaf switch
		if port == 0 {
			return f.swid(1, idx>>f.shift)
		}
	case port >= 0 && port < f.k: // down
		if level == 1 {
			return idx<<f.shift | port
		}
		return f.swid(level-1, f.setDigit(idx, level-2, port))
	case port < 2*f.k && level < f.levels: // up
		return f.swid(level+1, f.setDigit(idx, level-1, port-f.k))
	}
	return -1
}

func (f *fattree) Neighbors(node int) []int {
	level, _ := f.locate(node)
	n := 2 * f.k
	switch {
	case level == 0:
		n = 1
	case level == f.levels:
		n = f.k
	}
	nb := make([]int, n)
	for p := range nb {
		nb[p] = f.Neighbor(node, p)
	}
	return nb
}

// anchor maps a destination to switch-index space: the leaf switch column
// for a host, the switch's own index otherwise. Routing is then digit
// correction against the anchor.
func (f *fattree) anchor(level, idx int) int {
	if level == 0 {
		return idx >> f.shift
	}
	return idx
}

func (f *fattree) Route(at, to int) int {
	if at == to {
		panic("topology: Route(at, at)")
	}
	al, ai := f.locate(at)
	if al == 0 {
		return 0 // a host's only port
	}
	tl, ti := f.locate(to)
	a := f.anchor(tl, ti)
	m := f.maxDiffDigit(ai, a)
	if m < 0 { // in the destination's column
		if tl == 0 {
			if al == 1 {
				return to & (f.k - 1) // down to the host itself
			}
			return f.digit(a, al-2) // descend in-column
		}
		if al < tl {
			return f.k + f.digit(a, al-1) // ascend in-column
		}
		return f.digit(a, al-2)
	}
	if al <= m+1 {
		// The highest wrong digit can only change at level m+2: climb,
		// already steering by the destination's digit.
		return f.k + f.digit(a, al-1)
	}
	return f.digit(a, al-2) // descend, correcting digit al-2
}

func (f *fattree) MinimalPorts(at, to int) []int {
	al, ai := f.locate(at)
	tl, ti := f.locate(to)
	if al != 0 && tl == 0 {
		// Host-bound traffic in the climb phase may take any up port: every
		// level-(al+1) switch can still descend to the destination in the
		// same number of hops.
		if m := f.maxDiffDigit(ai, f.anchor(tl, ti)); m >= al-1 {
			out := make([]int, f.k)
			for j := range out {
				out[j] = f.k + j
			}
			return out
		}
	}
	return []int{f.Route(at, to)}
}

func (f *fattree) Dims() int              { return 1 }
func (f *fattree) PortDim(int) int        { return 0 }
func (f *fattree) Dateline(int, int) bool { return false }

// dragonfly -----------------------------------------------------------------

// A dragonfly of `groups` groups, each a clique of `routers` routers, with
// `globals` global links per router. Ports 0..routers-2 are intra-group
// (clique) links; ports routers-1 .. routers-2+globals are global links.
// Global link ℓ = localRouter*globals + linkIdx of group G runs to group
// ℓ (for ℓ < G) or ℓ+1 (skipping G itself), the standard absolute
// arrangement, so any two groups are joined by exactly one global link when
// groups-1 == routers*globals (smaller group counts leave spare global
// ports unconnected).
//
// Minimal routing is at most three hops — intra to the gateway router,
// one global hop, intra to the destination — and Dateline marks every
// global port, so the existing wormhole dateline machinery yields the
// classic two-virtual-channel dragonfly deadlock-avoidance scheme: VC0
// before the global hop, VC1 from the global hop on.
type dragonfly struct {
	groups, routers, globals int
}

// NewDragonfly builds a dragonfly from routers-per-group, global links per
// router, and the group count.
func NewDragonfly(routers, globals, groups int) (Topology, error) {
	if routers < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs >= 1 router per group, got %d (field Routers)", routers)
	}
	if globals < 1 {
		return nil, fmt.Errorf("topology: dragonfly needs >= 1 global link per router, got %d (field Globals)", globals)
	}
	if groups < 2 {
		return nil, fmt.Errorf("topology: dragonfly needs >= 2 groups, got %d (field Groups)", groups)
	}
	if groups-1 > routers*globals {
		return nil, fmt.Errorf("topology: dragonfly with %d groups needs Routers*Globals >= %d, got %d*%d (fields Routers, Globals, Groups)",
			groups, groups-1, routers, globals)
	}
	if routers > maxTopologyNodes/groups {
		return nil, fmt.Errorf("topology: dragonfly %d*%d exceeds %d nodes", groups, routers, maxTopologyNodes)
	}
	return &dragonfly{groups: groups, routers: routers, globals: globals}, nil
}

func (d *dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(a=%d,h=%d,g=%d)", d.routers, d.globals, d.groups)
}
func (d *dragonfly) Nodes() int  { return d.groups * d.routers }
func (d *dragonfly) Degree() int { return d.routers - 1 + d.globals }

func (d *dragonfly) split(node int) (group, router int) {
	return node / d.routers, node % d.routers
}

// intraPort is the clique port at router r towards router q (q != r).
func intraPort(r, q int) int {
	if q < r {
		return q
	}
	return q - 1
}

func (d *dragonfly) Neighbor(node, port int) int {
	g, r := d.split(node)
	if port < 0 {
		return -1
	}
	if port < d.routers-1 { // intra-group clique
		q := port
		if q >= r {
			q++
		}
		return g*d.routers + q
	}
	if port >= d.routers-1+d.globals {
		return -1
	}
	// Global link ℓ of this group; its far group skips g in the numbering.
	l := r*d.globals + (port - (d.routers - 1))
	dst := l
	if dst >= g {
		dst++
	}
	if dst >= d.groups {
		return -1 // spare global port on an under-full machine
	}
	back := g
	if g > dst {
		back = g - 1
	}
	return dst*d.routers + back/d.globals
}

func (d *dragonfly) Neighbors(node int) []int {
	nb := make([]int, d.Degree())
	for p := range nb {
		nb[p] = d.Neighbor(node, p)
	}
	return nb
}

func (d *dragonfly) Route(at, to int) int {
	if at == to {
		panic("topology: Route(at, at)")
	}
	g, r := d.split(at)
	tg, tr := d.split(to)
	if g == tg {
		return intraPort(r, tr)
	}
	// Global link towards tg leaves from the gateway router owning link ℓ.
	l := tg
	if tg > g {
		l = tg - 1
	}
	gw := l / d.globals
	if r == gw {
		return d.routers - 1 + l%d.globals
	}
	return intraPort(r, gw)
}

// MinimalPorts: with one global link per group pair the minimal path is
// unique, so the deterministic route is the only minimal port.
func (d *dragonfly) MinimalPorts(at, to int) []int { return []int{d.Route(at, to)} }

func (d *dragonfly) Dims() int       { return 1 }
func (d *dragonfly) PortDim(int) int { return 0 }

// Dateline marks every global port: wormhole packets switch to the high
// virtual channel when (and after) crossing groups, which breaks the
// global/intra channel-dependency cycle.
func (d *dragonfly) Dateline(node, port int) bool { return port >= d.routers-1 }
