package topology

import (
	"strings"
	"testing"
)

// props returns every family at property-test size, paired with an upper
// bound on its diameter (structural, not computed — the bound the routing
// property is checked against).
func props(t *testing.T) []struct {
	tp  Topology
	dia int
} {
	t.Helper()
	mk := func(tp Topology, err error) Topology {
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	return []struct {
		tp  Topology
		dia int
	}{
		{mk(NewRing(9)), 4},
		{mk(NewMesh(4, 4)), 6},
		{mk(NewTorus(4, 5)), 4},
		{mk(NewHypercube(32)), 5},
		{mk(NewStar(8)), 2},
		{mk(NewFull(7)), 1},
		{mk(NewTorus3D(3, 4, 5)), 1 + 2 + 2},
		{mk(NewTorus3D(2, 2, 2)), 3},
		{mk(NewFatTree(4, 2)), 2 * 2},  // host-switch-...-switch-host
		{mk(NewFatTree(2, 3)), 2 * 3},  // binary, three tiers
		{mk(NewDragonfly(2, 2, 5)), 5}, // intra + global + intra, with slack
		{mk(NewDragonfly(4, 1, 5)), 5}, // single global link per router
		{mk(NewDragonfly(1, 3, 4)), 3}, // single-router groups
	}
}

// Route must reach every destination within the family's diameter bound, and
// every step must use a live port.
func TestRouteReachesWithinDiameter(t *testing.T) {
	for _, c := range props(t) {
		tp, bound := c.tp, c.dia
		t.Run(tp.Name(), func(t *testing.T) {
			n := tp.Nodes()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					if d := Distance(tp, a, b); d > bound {
						t.Fatalf("route %d->%d takes %d hops, diameter bound %d", a, b, d, bound)
					}
				}
			}
		})
	}
}

// MinimalPorts must contain the deterministic Route port, and following any
// advertised minimal port must strictly reduce the routed distance.
func TestMinimalPortsConsistent(t *testing.T) {
	for _, c := range props(t) {
		tp := c.tp
		t.Run(tp.Name(), func(t *testing.T) {
			n := tp.Nodes()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					ports := tp.MinimalPorts(a, b)
					if len(ports) == 0 {
						t.Fatalf("MinimalPorts(%d,%d) empty", a, b)
					}
					route := tp.Route(a, b)
					found := false
					d := Distance(tp, a, b)
					for _, p := range ports {
						if p == route {
							found = true
						}
						next := tp.Neighbor(a, p)
						if next < 0 {
							t.Fatalf("MinimalPorts(%d,%d) advertises dead port %d", a, b, p)
						}
						nd := 0
						if next != b {
							nd = Distance(tp, next, b)
						}
						if nd != d-1 {
							t.Fatalf("MinimalPorts(%d,%d): port %d leads to distance %d, want %d", a, b, p, nd, d-1)
						}
					}
					if !found {
						t.Fatalf("MinimalPorts(%d,%d) = %v misses Route port %d", a, b, ports, route)
					}
				}
			}
		})
	}
}

// Neighbor must agree with Neighbors on every defined port and return -1 on
// the padding range up to Degree().
func TestNeighborMatchesNeighbors(t *testing.T) {
	for _, c := range props(t) {
		tp := c.tp
		t.Run(tp.Name(), func(t *testing.T) {
			deg := tp.Degree()
			buf := make([]int, 0, deg)
			for a := 0; a < tp.Nodes(); a++ {
				nbs := tp.Neighbors(a)
				for p, want := range nbs {
					if got := tp.Neighbor(a, p); got != want {
						t.Fatalf("Neighbor(%d,%d) = %d, Neighbors %d", a, p, got, want)
					}
				}
				for p := len(nbs); p < deg; p++ {
					if got := tp.Neighbor(a, p); got != -1 {
						t.Fatalf("Neighbor(%d,%d) = %d on a port beyond len(Neighbors), want -1", a, p, got)
					}
				}
				into := NeighborsInto(tp, a, buf)
				if len(into) != deg {
					t.Fatalf("NeighborsInto returned %d entries, want Degree %d", len(into), deg)
				}
				for p := 0; p < deg; p++ {
					if into[p] != tp.Neighbor(a, p) {
						t.Fatalf("NeighborsInto[%d] = %d, Neighbor %d", p, into[p], tp.Neighbor(a, p))
					}
				}
			}
		})
	}
}

// Wormhole deadlock freedom rests on each route crossing each dimension's
// dateline at most once: the virtual-channel switch is then monotone
// (vc0 -> vc1, never back), which breaks every cyclic channel dependency.
func TestDatelineCrossedAtMostOncePerDimension(t *testing.T) {
	for _, c := range props(t) {
		tp := c.tp
		t.Run(tp.Name(), func(t *testing.T) {
			crossings := make([]int, tp.Dims())
			for a := 0; a < tp.Nodes(); a++ {
				for b := 0; b < tp.Nodes(); b++ {
					if a == b {
						continue
					}
					for i := range crossings {
						crossings[i] = 0
					}
					at := a
					for at != b {
						port := tp.Route(at, b)
						if d := tp.PortDim(port); tp.Dateline(at, port) {
							if crossings[d]++; crossings[d] > 1 {
								t.Fatalf("route %d->%d crosses dimension %d's dateline twice", a, b, d)
							}
						}
						at = tp.Neighbor(at, port)
					}
				}
			}
		})
	}
}

// Host-addressed fat-tree routes are strictly up*/down* — once a route
// starts descending it never climbs again. With datelines unused (Dateline
// is constant false), this is the property wormhole deadlock freedom rests
// on for application (host-to-host) traffic. Switch-addressed routes (a
// diagnostic, not an application pattern) may alternate: the minimal path
// between peer switches descends to a shared child before climbing.
func TestFatTreeUpDownRouting(t *testing.T) {
	ft, err := NewFatTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := ft.(*fattree)
	for a := 0; a < ft.Nodes(); a++ {
		for b := 0; b < f.hosts; b++ {
			if a == b {
				continue
			}
			at, descended := a, false
			for at != b {
				port := ft.Route(at, b)
				next := ft.Neighbor(at, port)
				lAt, _ := f.locate(at)
				lNext, _ := f.locate(next)
				if lNext > lAt {
					if descended {
						t.Fatalf("host-addressed route %d->%d climbs again after descending (at node %d)", a, b, at)
					}
				} else {
					descended = true
				}
				at = next
			}
		}
	}
}

// Dragonfly minimal routes use at most one global hop, so the global-port
// dateline switches the virtual channel at most once per route.
func TestDragonflyOneGlobalHop(t *testing.T) {
	df, err := NewDragonfly(3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < df.Nodes(); a++ {
		for b := 0; b < df.Nodes(); b++ {
			if a == b {
				continue
			}
			at, globals := a, 0
			for at != b {
				port := df.Route(at, b)
				if df.Dateline(at, port) {
					globals++
				}
				at = df.Neighbor(at, port)
			}
			if globals > 1 {
				t.Fatalf("route %d->%d takes %d global hops, want <= 1", a, b, globals)
			}
		}
	}
}

// Constructor validation must name the offending configuration field, so a
// config error is actionable without reading the source.
func TestHierarchyValidationNamesFields(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{Kind: Torus3D, DimX: 1, DimY: 4, DimZ: 4}, "DimX"},
		{Config{Kind: Torus3D, DimX: 4, DimY: 4, DimZ: 0}, "DimZ"},
		{Config{Kind: FatTree, Arity: 3, Levels: 2}, "Arity"},
		{Config{Kind: FatTree, Arity: 0, Levels: 2}, "Arity"},
		{Config{Kind: FatTree, Arity: 4, Levels: 0}, "Levels"},
		{Config{Kind: Dragonfly, Routers: 0, Globals: 2, Groups: 5}, "Routers"},
		{Config{Kind: Dragonfly, Routers: 2, Globals: 0, Groups: 5}, "Globals"},
		{Config{Kind: Dragonfly, Routers: 2, Globals: 2, Groups: 1}, "Groups"},
		{Config{Kind: Dragonfly, Routers: 2, Globals: 1, Groups: 9}, "Routers*Globals"},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if err == nil {
			t.Errorf("%+v: expected error naming %s", c.cfg, c.field)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("%+v: error %q does not name field %s", c.cfg, err, c.field)
		}
	}
}

// A million-node machine of each hierarchical family must construct
// instantly (generator-backed, no adjacency materialisation) and route in
// O(1) per hop.
func TestMillionNodeConstruction(t *testing.T) {
	mk := func(tp Topology, err error) Topology {
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	for _, tp := range []Topology{
		mk(NewTorus3D(100, 100, 100)),   // 1,000,000 nodes
		mk(NewFatTree(32, 4)),           // 32^4 = 1,048,576 hosts + 131,072 switches
		mk(NewDragonfly(1024, 1, 1025)), // 1024 routers x 1025 groups = 1,049,600
	} {
		n := tp.Nodes()
		if n < 1_000_000 {
			t.Fatalf("%s: %d nodes, want >= 1M", tp.Name(), n)
		}
		// Spot-check routing across the machine: far corners and a few
		// midpoints. Distance walks the route and panics on loops.
		pairs := [][2]int{{0, n - 1}, {n - 1, 0}, {1, n / 2}, {n / 3, 2 * n / 3}}
		for _, pr := range pairs {
			if pr[0] == pr[1] {
				continue
			}
			Distance(tp, pr[0], pr[1])
		}
		// Neighbor symmetry on a sample of nodes.
		for _, a := range []int{0, 1, n / 2, n - 1} {
			for p := 0; p < tp.Degree(); p++ {
				b := tp.Neighbor(a, p)
				if b < 0 {
					continue
				}
				back := false
				for q := 0; q < tp.Degree(); q++ {
					if tp.Neighbor(b, q) == a {
						back = true
						break
					}
				}
				if !back {
					t.Fatalf("%s: asymmetric link %d -> %d", tp.Name(), a, b)
				}
			}
		}
	}
}
