package topology

// Partition assigns the nodes of an n-node machine to the given number of
// shards for parallel simulation, returning a node→shard map. Nodes are cut
// into contiguous, balanced id ranges (sizes differ by at most one). All
// regular topologies here number nodes in row-major / dimension order, so a
// contiguous id range is a spatial slab: a run of a ring's arc, a band of
// rows of a mesh or torus, a subcube of a hypercube — the cuts that
// minimise the inter-shard link count and therefore the synchronisation
// traffic. A shard count above n is clamped to n; below 1, to 1.
func Partition(n, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	part := make([]int, n)
	for i := range part {
		part[i] = i * shards / n
	}
	return part
}

// Shards returns the number of distinct shards in a Partition result: one
// more than its last (largest) entry.
func Shards(part []int) int {
	if len(part) == 0 {
		return 0
	}
	return part[len(part)-1] + 1
}

// CrossLinks counts the directed links of t whose endpoints land in
// different shards of part — the channels that become cross-shard mailbox
// traffic. A partition diagnostic for tests and tuning.
func CrossLinks(t Topology, part []int) int {
	cut := 0
	deg := t.Degree()
	for node := 0; node < t.Nodes(); node++ {
		for port := 0; port < deg; port++ {
			if nb := t.Neighbor(node, port); nb >= 0 && part[node] != part[nb] {
				cut++
			}
		}
	}
	return cut
}
