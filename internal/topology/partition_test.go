package topology

import (
	"fmt"
	"testing"
)

func TestPartitionBalancedContiguous(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{8, 1}, {8, 2}, {8, 3}, {8, 4}, {8, 8}, {8, 16}, {7, 2}, {1, 4}, {64, 4},
	} {
		part := Partition(tc.n, tc.shards)
		if len(part) != tc.n {
			t.Fatalf("Partition(%d,%d): %d entries", tc.n, tc.shards, len(part))
		}
		want := tc.shards
		if want > tc.n {
			want = tc.n
		}
		if want < 1 {
			want = 1
		}
		if got := Shards(part); got != want {
			t.Errorf("Partition(%d,%d): %d shards, want %d (%v)", tc.n, tc.shards, got, want, part)
		}
		sizes := make([]int, Shards(part))
		for i, s := range part {
			if i > 0 && (s < part[i-1] || s > part[i-1]+1) {
				t.Fatalf("Partition(%d,%d) not contiguous: %v", tc.n, tc.shards, part)
			}
			sizes[s]++
		}
		min, max := tc.n, 0
		for _, sz := range sizes {
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
		}
		if max-min > 1 {
			t.Errorf("Partition(%d,%d) unbalanced: sizes %v", tc.n, tc.shards, sizes)
		}
	}
}

func TestCrossLinksMeshSlabs(t *testing.T) {
	// 4x4 mesh, row-major ids: 2 shards cut it into two 4x2 bands with 4
	// physical links crossing, i.e. 8 directed links.
	topo, err := New(Config{Kind: Mesh2D, DimX: 4, DimY: 4})
	if err != nil {
		t.Fatal(err)
	}
	part := Partition(16, 2)
	if got := CrossLinks(topo, part); got != 8 {
		t.Fatalf("CrossLinks = %d, want 8 (partition %v)", got, part)
	}
	// Sanity: every node's shard matches its row band.
	for i := 0; i < 16; i++ {
		want := 0
		if i >= 8 {
			want = 1
		}
		if part[i] != want {
			t.Fatalf("node %d in shard %d, want %d (%v)", i, part[i], want, fmt.Sprint(part))
		}
	}
}
