package topology

import "testing"

// BenchmarkScaleRouting measures the per-hop cost of purely algorithmic
// routing on million-node machines: one Route + Dateline + Neighbor step,
// the exact per-hop query mix of the network forward loop. There is no
// adjacency structure and no table — the figure of merit is a handful of
// nanoseconds per hop, flat in machine size.
func BenchmarkScaleRouting(b *testing.B) {
	mk := func(tp Topology, err error) Topology {
		if err != nil {
			b.Fatal(err)
		}
		return tp
	}
	for _, tp := range []Topology{
		mk(NewTorus3D(100, 100, 100)),   // 1,000,000 nodes
		mk(NewFatTree(32, 4)),           // 1,179,648 nodes
		mk(NewDragonfly(1024, 1, 1025)), // 1,049,600 nodes
	} {
		tp := tp
		b.Run(tp.Name(), func(b *testing.B) {
			n := tp.Nodes()
			sink, hops := 0, 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Walk a long route end to end; vary the pair so the
				// branch mix covers ascent, descent and wraparound.
				at, to := i%n, (i*7919+n/2)%n
				for at != to {
					port := tp.Route(at, to)
					if tp.Dateline(at, port) {
						sink++
					}
					at = tp.Neighbor(at, port)
					hops++
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(hops), "ns/hop")
			_ = sink
		})
	}
}
