package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a compact command-line topology specification of the form
// "kind:dims", where dims is an "x"-separated list of sizes whose meaning
// depends on the family:
//
//	ring:64            64 nodes in a ring
//	mesh:8x8           8 x 8 mesh
//	torus:8x8          8 x 8 torus
//	torus3d:16x16x16   16 x 16 x 16 torus
//	hypercube:64       64 nodes (a power of two)
//	star:16            hub plus 15 leaves
//	full:8             8 nodes, fully connected
//	fattree:32x3       arity-32 fat-tree with 3 switch tiers (32^3 hosts)
//	dragonfly:8x4x33   8 routers/group, 4 global links/router, 33 groups
//
// The returned Config has not been validated beyond arity of the dims list;
// pass it to New for the family's own parameter checks.
func ParseSpec(spec string) (Config, error) {
	kindStr, dimStr, _ := strings.Cut(spec, ":")
	kind := Kind(strings.TrimSpace(kindStr))

	var dims []int
	if dimStr != "" {
		for _, part := range strings.Split(dimStr, "x") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return Config{}, fmt.Errorf("topology spec %q: bad dimension %q", spec, part)
			}
			dims = append(dims, v)
		}
	}

	want := func(n int, shape string) error {
		if len(dims) != n {
			return fmt.Errorf("topology spec %q: %s takes %q, got %d dimension(s)",
				spec, kind, shape, len(dims))
		}
		return nil
	}

	cfg := Config{Kind: kind}
	switch kind {
	case Ring, Hypercube, Star, FullyConnected:
		if err := want(1, string(kind)+":<nodes>"); err != nil {
			return Config{}, err
		}
		cfg.Nodes = dims[0]
	case Mesh2D, Torus2D:
		if err := want(2, string(kind)+":<x>x<y>"); err != nil {
			return Config{}, err
		}
		cfg.DimX, cfg.DimY = dims[0], dims[1]
	case Torus3D:
		if err := want(3, "torus3d:<x>x<y>x<z>"); err != nil {
			return Config{}, err
		}
		cfg.DimX, cfg.DimY, cfg.DimZ = dims[0], dims[1], dims[2]
	case FatTree:
		if err := want(2, "fattree:<arity>x<levels>"); err != nil {
			return Config{}, err
		}
		cfg.Arity, cfg.Levels = dims[0], dims[1]
	case Dragonfly:
		if err := want(3, "dragonfly:<routers>x<globals>x<groups>"); err != nil {
			return Config{}, err
		}
		cfg.Routers, cfg.Globals, cfg.Groups = dims[0], dims[1], dims[2]
	default:
		return Config{}, fmt.Errorf("topology spec %q: unknown kind %q (have ring, mesh, torus, torus3d, hypercube, star, full, fattree, dragonfly)", spec, kindStr)
	}
	return cfg, nil
}
