package topology

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		want  Config
		nodes int
	}{
		{"ring:64", Config{Kind: Ring, Nodes: 64}, 64},
		{"mesh:8x8", Config{Kind: Mesh2D, DimX: 8, DimY: 8}, 64},
		{"torus:4x8", Config{Kind: Torus2D, DimX: 4, DimY: 8}, 32},
		{"torus3d:4x4x4", Config{Kind: Torus3D, DimX: 4, DimY: 4, DimZ: 4}, 64},
		{"hypercube:64", Config{Kind: Hypercube, Nodes: 64}, 64},
		{"star:16", Config{Kind: Star, Nodes: 16}, 16},
		{"full:8", Config{Kind: FullyConnected, Nodes: 8}, 8},
		{"fattree:4x2", Config{Kind: FatTree, Arity: 4, Levels: 2}, 24},
		{"dragonfly:2x2x5", Config{Kind: Dragonfly, Routers: 2, Globals: 2, Groups: 5}, 10},
		{" torus3d : 2 x 3 x 4 ", Config{Kind: Torus3D, DimX: 2, DimY: 3, DimZ: 4}, 24},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
			continue
		}
		tp, err := New(got)
		if err != nil {
			t.Errorf("New(ParseSpec(%q)): %v", c.spec, err)
			continue
		}
		if tp.Nodes() != c.nodes {
			t.Errorf("%q: %d nodes, want %d", c.spec, tp.Nodes(), c.nodes)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		mention string
	}{
		{"blorp:4", "unknown kind"},
		{"ring", "got 0 dimension"},
		{"ring:4x4", "got 2 dimension"},
		{"mesh:8", "mesh:<x>x<y>"},
		{"torus3d:8x8", "torus3d:<x>x<y>x<z>"},
		{"fattree:4", "fattree:<arity>x<levels>"},
		{"dragonfly:4x2", "dragonfly:<routers>x<globals>x<groups>"},
		{"mesh:8xeight", "bad dimension"},
		{"ring:", "got 0 dimension"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error mentioning %q", c.spec, c.mention)
			continue
		}
		if !strings.Contains(err.Error(), c.mention) {
			t.Errorf("ParseSpec(%q) error %q does not mention %q", c.spec, err, c.mention)
		}
	}
}
