// Package topology describes the physical interconnect of the multicomputer:
// how the nodes of the multi-node communication model (Fig. 3b) are wired
// together, and the deterministic minimal routing function the routers use.
// Provided shapes: ring, 2-D mesh, 2-D torus, 3-D torus, hypercube, star,
// fully connected, k-ary fat-tree and dragonfly; all are parameterised by
// size, per the workbench goal of evaluating a wide range of design options.
//
// Every family is generator-backed: the wiring is a closed-form function of
// the node id, so no adjacency structure is ever materialised and a
// million-node machine costs a few words of memory. Hot paths (routers, the
// fault injector, the network forward loop) use the allocation-free
// Neighbor(node, port) form; Neighbors remains for construction-time and
// diagnostic code.
package topology

import "fmt"

// Topology is a wiring of N nodes plus a deterministic routing function.
// Ports are small integers local to a node; Neighbors maps ports to node
// ids. Route returns the output port for a packet at `at` heading to `to`
// along a minimal deterministic path (dimension-order on meshes/tori, e-cube
// on hypercubes, up*/down* on fat-trees, minimal group routing on
// dragonflies).
type Topology interface {
	Name() string
	Nodes() int
	// Degree is the maximum number of ports on any node.
	Degree() int
	// Neighbors returns, for each port of the node, the node on the other
	// end, or -1 for an unconnected port (mesh edges, star leaves). The
	// slice may be built per call; hot paths use Neighbor instead.
	Neighbors(node int) []int
	// Neighbor returns the node at the far end of `port`, or -1 when the
	// port is unconnected or out of range. It is O(1) and never allocates:
	// for port < len(Neighbors(node)) it equals Neighbors(node)[port], and
	// it returns -1 for every port in [len(Neighbors(node)), Degree()).
	Neighbor(node, port int) int
	// Route returns the output port at node `at` towards node `to`.
	// at == to is invalid.
	Route(at, to int) int
	// MinimalPorts returns every output port at `at` that lies on some
	// minimal path to `to` (adaptive routers choose among them by local
	// congestion). The deterministic Route port is always included.
	MinimalPorts(at, to int) []int
	// Dims returns the number of routing dimensions; PortDim maps a port to
	// its dimension. Used for per-dimension virtual-channel bookkeeping.
	Dims() int
	// PortDim returns the routing dimension a port belongs to.
	PortDim(port int) int
	// Dateline reports whether the hop out of `node` via `port` crosses the
	// dimension's dateline (a wraparound edge). Wormhole routers switch to
	// the high virtual channel there, which is what makes wormhole routing
	// deadlock-free on rings and tori (Dally–Seitz).
	Dateline(node, port int) bool
}

// Kind names a topology family.
type Kind string

// Topology families.
const (
	Ring           Kind = "ring"
	Mesh2D         Kind = "mesh"
	Torus2D        Kind = "torus"
	Torus3D        Kind = "torus3d"
	Hypercube      Kind = "hypercube"
	Star           Kind = "star"
	FullyConnected Kind = "full"
	FatTree        Kind = "fattree"
	Dragonfly      Kind = "dragonfly"
)

// Hierarchical reports whether k is one of the generator-backed hierarchical
// families added for large-machine studies (torus3d, fattree, dragonfly) —
// the topologies gated to machine-configuration schema v2.
func Hierarchical(k Kind) bool {
	return k == Torus3D || k == FatTree || k == Dragonfly
}

// Config selects and sizes a topology.
type Config struct {
	Kind Kind
	// Nodes is the node count (ring, hypercube, star, full). For hypercubes
	// it must be a power of two.
	Nodes int
	// DimX and DimY size meshes and tori; DimZ additionally sizes 3-D tori.
	DimX, DimY int
	DimZ       int
	// Arity and Levels size k-ary fat-trees: Arity hosts per leaf switch
	// (a power of two) and Levels switch tiers. See NewFatTree.
	Arity, Levels int
	// Routers, Globals and Groups size dragonflies: Routers per group,
	// Globals (global links) per router, Groups in the machine. See
	// NewDragonfly.
	Routers, Globals, Groups int
}

// New builds the configured topology.
func New(cfg Config) (Topology, error) {
	switch cfg.Kind {
	case Ring:
		return NewRing(cfg.Nodes)
	case Mesh2D:
		return NewMesh(cfg.DimX, cfg.DimY)
	case Torus2D:
		return NewTorus(cfg.DimX, cfg.DimY)
	case Torus3D:
		return NewTorus3D(cfg.DimX, cfg.DimY, cfg.DimZ)
	case Hypercube:
		return NewHypercube(cfg.Nodes)
	case Star:
		return NewStar(cfg.Nodes)
	case FullyConnected:
		return NewFull(cfg.Nodes)
	case FatTree:
		return NewFatTree(cfg.Arity, cfg.Levels)
	case Dragonfly:
		return NewDragonfly(cfg.Routers, cfg.Globals, cfg.Groups)
	}
	return nil, fmt.Errorf("topology: unknown kind %q", cfg.Kind)
}

// NeighborsInto fills buf with the far end of every port of `node` and
// returns it, growing buf only when its capacity is below Degree(). The
// result always has Degree() entries with -1 for unconnected ports — the
// allocation-free counterpart of Neighbors for callers that iterate ports.
func NeighborsInto(t Topology, node int, buf []int) []int {
	deg := t.Degree()
	if cap(buf) < deg {
		buf = make([]int, deg)
	}
	buf = buf[:deg]
	for p := 0; p < deg; p++ {
		buf[p] = t.Neighbor(node, p)
	}
	return buf
}

// Distance returns the hop count of the path Route actually takes from a to
// b (0 if a == b). It panics if routing does not converge within Nodes()
// hops, which would mean a broken routing function.
func Distance(t Topology, a, b int) int {
	hops := 0
	at := a
	for at != b {
		port := t.Route(at, b)
		next := t.Neighbor(at, port)
		if next < 0 {
			panic(fmt.Sprintf("topology %s: route from %d to %d via dead port %d", t.Name(), at, b, port))
		}
		at = next
		hops++
		if hops > t.Nodes() {
			panic(fmt.Sprintf("topology %s: routing loop from %d to %d", t.Name(), a, b))
		}
	}
	return hops
}

// Diameter returns the longest routed distance between any node pair.
func Diameter(t Topology) int {
	d := 0
	for a := 0; a < t.Nodes(); a++ {
		for b := 0; b < t.Nodes(); b++ {
			if a == b {
				continue
			}
			if h := Distance(t, a, b); h > d {
				d = h
			}
		}
	}
	return d
}

// AvgDistance returns the mean routed distance over all ordered pairs.
func AvgDistance(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				total += Distance(t, a, b)
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// Links counts the distinct physical links (unordered neighbor pairs).
func Links(t Topology) int {
	n := 0
	for a := 0; a < t.Nodes(); a++ {
		for _, b := range t.Neighbors(a) {
			if b > a {
				n++
			}
		}
	}
	return n
}

// ring

type ring struct{ n int }

// NewRing builds a bidirectional ring of n nodes (n >= 2).
func NewRing(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: ring needs >= 2 nodes, got %d", n)
	}
	return &ring{n}, nil
}

func (r *ring) Name() string { return fmt.Sprintf("ring(%d)", r.n) }
func (r *ring) Nodes() int   { return r.n }
func (r *ring) Degree() int  { return 2 }
func (r *ring) Neighbors(node int) []int {
	return []int{(node + 1) % r.n, (node - 1 + r.n) % r.n}
}
func (r *ring) Neighbor(node, port int) int {
	switch port {
	case 0:
		return (node + 1) % r.n
	case 1:
		return (node - 1 + r.n) % r.n
	}
	return -1
}
func (r *ring) Route(at, to int) int {
	fwd := (to - at + r.n) % r.n
	if fwd <= r.n-fwd {
		return 0 // clockwise
	}
	return 1
}
func (r *ring) Dims() int       { return 1 }
func (r *ring) PortDim(int) int { return 0 }
func (r *ring) Dateline(node, port int) bool {
	// Each direction is its own ring; its dateline is its wrap edge.
	return (port == 0 && node == r.n-1) || (port == 1 && node == 0)
}

// mesh / torus

type mesh struct {
	w, h int
	wrap bool
}

// NewMesh builds a w x h 2-D mesh with dimension-order (XY) routing.
func NewMesh(w, h int) (Topology, error) {
	if w < 1 || h < 1 || w*h < 2 {
		return nil, fmt.Errorf("topology: mesh %dx%d too small", w, h)
	}
	return &mesh{w, h, false}, nil
}

// NewTorus builds a w x h 2-D torus (wrap-around mesh).
func NewTorus(w, h int) (Topology, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topology: torus %dx%d needs both dimensions >= 2", w, h)
	}
	return &mesh{w, h, true}, nil
}

// Ports: 0 = +x (east), 1 = -x (west), 2 = +y (north), 3 = -y (south).
const (
	east = iota
	west
	north
	south
)

func (m *mesh) Name() string {
	if m.wrap {
		return fmt.Sprintf("torus(%dx%d)", m.w, m.h)
	}
	return fmt.Sprintf("mesh(%dx%d)", m.w, m.h)
}
func (m *mesh) Nodes() int  { return m.w * m.h }
func (m *mesh) Degree() int { return 4 }

func (m *mesh) coords(node int) (x, y int) { return node % m.w, node / m.w }
func (m *mesh) id(x, y int) int            { return y*m.w + x }

func (m *mesh) Neighbors(node int) []int {
	x, y := m.coords(node)
	nb := []int{-1, -1, -1, -1}
	if m.wrap {
		if m.w > 1 {
			nb[east] = m.id((x+1)%m.w, y)
			nb[west] = m.id((x-1+m.w)%m.w, y)
		}
		if m.h > 1 {
			nb[north] = m.id(x, (y+1)%m.h)
			nb[south] = m.id(x, (y-1+m.h)%m.h)
		}
	} else {
		if x+1 < m.w {
			nb[east] = m.id(x+1, y)
		}
		if x > 0 {
			nb[west] = m.id(x-1, y)
		}
		if y+1 < m.h {
			nb[north] = m.id(x, y+1)
		}
		if y > 0 {
			nb[south] = m.id(x, y-1)
		}
	}
	return nb
}

func (m *mesh) Neighbor(node, port int) int {
	x, y := m.coords(node)
	if m.wrap {
		switch port {
		case east:
			if m.w > 1 {
				return m.id((x+1)%m.w, y)
			}
		case west:
			if m.w > 1 {
				return m.id((x-1+m.w)%m.w, y)
			}
		case north:
			if m.h > 1 {
				return m.id(x, (y+1)%m.h)
			}
		case south:
			if m.h > 1 {
				return m.id(x, (y-1+m.h)%m.h)
			}
		}
		return -1
	}
	switch port {
	case east:
		if x+1 < m.w {
			return m.id(x+1, y)
		}
	case west:
		if x > 0 {
			return m.id(x-1, y)
		}
	case north:
		if y+1 < m.h {
			return m.id(x, y+1)
		}
	case south:
		if y > 0 {
			return m.id(x, y-1)
		}
	}
	return -1
}

// Route implements dimension-order (XY) routing: correct x first, then y.
// On the torus, each dimension takes the shorter way around.
func (m *mesh) Route(at, to int) int {
	ax, ay := m.coords(at)
	tx, ty := m.coords(to)
	if ax != tx {
		if !m.wrap {
			if tx > ax {
				return east
			}
			return west
		}
		fwd := (tx - ax + m.w) % m.w
		if fwd <= m.w-fwd {
			return east
		}
		return west
	}
	if ay != ty {
		if !m.wrap {
			if ty > ay {
				return north
			}
			return south
		}
		fwd := (ty - ay + m.h) % m.h
		if fwd <= m.h-fwd {
			return north
		}
		return south
	}
	panic("topology: Route(at, at)")
}

func (m *mesh) Dims() int { return 2 }
func (m *mesh) PortDim(port int) int {
	if port == east || port == west {
		return 0
	}
	return 1
}
func (m *mesh) Dateline(node, port int) bool {
	if !m.wrap {
		return false
	}
	x, y := m.coords(node)
	switch port {
	case east:
		return x == m.w-1
	case west:
		return x == 0
	case north:
		return y == m.h-1
	case south:
		return y == 0
	}
	return false
}

// hypercube

type hypercube struct {
	n, dim int
}

// NewHypercube builds a hypercube of n nodes (n a power of two >= 2), with
// e-cube routing (correct the lowest differing dimension first).
func NewHypercube(n int) (Topology, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("topology: hypercube needs a power-of-two node count, got %d", n)
	}
	dim := 0
	for x := n; x > 1; x >>= 1 {
		dim++
	}
	return &hypercube{n, dim}, nil
}

func (h *hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.n) }
func (h *hypercube) Nodes() int   { return h.n }
func (h *hypercube) Degree() int  { return h.dim }
func (h *hypercube) Neighbors(node int) []int {
	nb := make([]int, h.dim)
	for i := 0; i < h.dim; i++ {
		nb[i] = node ^ (1 << i)
	}
	return nb
}
func (h *hypercube) Neighbor(node, port int) int {
	if port < 0 || port >= h.dim {
		return -1
	}
	return node ^ (1 << port)
}
func (h *hypercube) Route(at, to int) int {
	diff := at ^ to
	if diff == 0 {
		panic("topology: Route(at, at)")
	}
	for i := 0; i < h.dim; i++ {
		if diff&(1<<i) != 0 {
			return i
		}
	}
	panic("unreachable")
}

// star

type star struct{ n int }

// NewStar builds a star: node 0 is the hub, nodes 1..n-1 are leaves.
func NewStar(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs >= 2 nodes, got %d", n)
	}
	return &star{n}, nil
}

func (s *star) Name() string { return fmt.Sprintf("star(%d)", s.n) }
func (s *star) Nodes() int   { return s.n }
func (s *star) Degree() int  { return s.n - 1 }
func (s *star) Neighbors(node int) []int {
	if node == 0 {
		nb := make([]int, s.n-1)
		for i := range nb {
			nb[i] = i + 1
		}
		return nb
	}
	return []int{0}
}
func (s *star) Neighbor(node, port int) int {
	if node == 0 {
		if port >= 0 && port < s.n-1 {
			return port + 1
		}
		return -1
	}
	if port == 0 {
		return 0
	}
	return -1
}
func (s *star) Route(at, to int) int {
	if at == to {
		panic("topology: Route(at, at)")
	}
	if at == 0 {
		return to - 1
	}
	return 0 // to the hub
}

// fully connected

type full struct{ n int }

// NewFull builds a fully connected (crossbar-like) topology.
func NewFull(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: full needs >= 2 nodes, got %d", n)
	}
	return &full{n}, nil
}

func (f *full) Name() string { return fmt.Sprintf("full(%d)", f.n) }
func (f *full) Nodes() int   { return f.n }
func (f *full) Degree() int  { return f.n - 1 }
func (f *full) Neighbors(node int) []int {
	nb := make([]int, 0, f.n-1)
	for i := 0; i < f.n; i++ {
		if i != node {
			nb = append(nb, i)
		}
	}
	return nb
}
func (f *full) Neighbor(node, port int) int {
	if port < 0 || port >= f.n-1 {
		return -1
	}
	if port < node {
		return port
	}
	return port + 1
}
func (f *full) Route(at, to int) int {
	if at == to {
		panic("topology: Route(at, at)")
	}
	if to > at {
		return to - 1
	}
	return to
}

// Dateline bookkeeping for the remaining topologies: hypercubes route
// e-cube (no wraparound channels), stars and fully connected graphs have
// single-hop routes, so no virtual-channel datelines are needed.

func (h *hypercube) Dims() int              { return h.dim }
func (h *hypercube) PortDim(port int) int   { return port }
func (h *hypercube) Dateline(int, int) bool { return false }

func (s *star) Dims() int              { return 1 }
func (s *star) PortDim(int) int        { return 0 }
func (s *star) Dateline(int, int) bool { return false }

func (f *full) Dims() int              { return 1 }
func (f *full) PortDim(int) int        { return 0 }
func (f *full) Dateline(int, int) bool { return false }

// MinimalPorts implementations: every port that strictly reduces the
// remaining distance.

func (r *ring) MinimalPorts(at, to int) []int {
	fwd := (to - at + r.n) % r.n
	switch {
	case fwd*2 == r.n:
		return []int{0, 1} // equidistant: both directions minimal
	case fwd < r.n-fwd:
		return []int{0}
	default:
		return []int{1}
	}
}

func (m *mesh) MinimalPorts(at, to int) []int {
	ax, ay := m.coords(at)
	tx, ty := m.coords(to)
	var out []int
	addDim := func(a, t, size int, pos, neg int) {
		if a == t {
			return
		}
		if !m.wrap {
			if t > a {
				out = append(out, pos)
			} else {
				out = append(out, neg)
			}
			return
		}
		fwd := (t - a + size) % size
		if fwd*2 == size {
			out = append(out, pos, neg)
		} else if fwd < size-fwd {
			out = append(out, pos)
		} else {
			out = append(out, neg)
		}
	}
	addDim(ax, tx, m.w, east, west)
	addDim(ay, ty, m.h, north, south)
	return out
}

func (h *hypercube) MinimalPorts(at, to int) []int {
	diff := at ^ to
	var out []int
	for i := 0; i < h.dim; i++ {
		if diff&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func (s *star) MinimalPorts(at, to int) []int { return []int{s.Route(at, to)} }
func (f *full) MinimalPorts(at, to int) []int { return []int{f.Route(at, to)} }
