package topology

import (
	"testing"
	"testing/quick"
)

func all(t *testing.T) []Topology {
	t.Helper()
	var out []Topology
	mk := func(tp Topology, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tp)
	}
	mk(NewRing(7))
	mk(NewMesh(4, 3))
	mk(NewTorus(4, 4))
	mk(NewHypercube(16))
	mk(NewStar(6))
	mk(NewFull(5))
	mk(NewTorus3D(3, 4, 2))
	mk(NewFatTree(4, 2))
	mk(NewDragonfly(2, 2, 5))
	return out
}

// Every topology: neighbor relation is symmetric and routing reaches every
// destination along ports that exist.
func TestTopologyInvariants(t *testing.T) {
	for _, tp := range all(t) {
		tp := tp
		t.Run(tp.Name(), func(t *testing.T) {
			n := tp.Nodes()
			for a := 0; a < n; a++ {
				nbs := tp.Neighbors(a)
				if len(nbs) > tp.Degree() {
					t.Fatalf("node %d has %d ports > degree %d", a, len(nbs), tp.Degree())
				}
				for _, b := range nbs {
					if b < 0 {
						continue
					}
					// Symmetry: b must list a as a neighbor.
					found := false
					for _, back := range tp.Neighbors(b) {
						if back == a {
							found = true
						}
					}
					if !found {
						t.Fatalf("asymmetric link %d -> %d", a, b)
					}
				}
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a != b {
						Distance(tp, a, b) // panics on loops/dead ports
					}
				}
			}
		})
	}
}

func TestRingDistances(t *testing.T) {
	r, _ := NewRing(8)
	if d := Distance(r, 0, 4); d != 4 {
		t.Fatalf("antipodal distance = %d, want 4", d)
	}
	if d := Distance(r, 0, 7); d != 1 {
		t.Fatalf("wrap distance = %d, want 1", d)
	}
	if Diameter(r) != 4 {
		t.Fatalf("diameter = %d, want 4", Diameter(r))
	}
}

func TestMeshXYRouting(t *testing.T) {
	m, _ := NewMesh(4, 4)
	// From (0,0) to (3,3): x first.
	if p := m.Route(0, 15); p != east {
		t.Fatalf("first hop port = %d, want east", p)
	}
	// From (3,0)=3 to (3,3)=15: x aligned, go north.
	if p := m.Route(3, 15); p != north {
		t.Fatalf("port = %d, want north", p)
	}
	if d := Distance(m, 0, 15); d != 6 {
		t.Fatalf("corner distance = %d, want 6", d)
	}
	if Diameter(m) != 6 {
		t.Fatalf("mesh diameter = %d, want 6", Diameter(m))
	}
}

func TestMeshEdgesHaveDeadPorts(t *testing.T) {
	m, _ := NewMesh(3, 3)
	nb := m.Neighbors(0) // corner
	dead := 0
	for _, b := range nb {
		if b == -1 {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("corner dead ports = %d, want 2", dead)
	}
}

func TestTorusWrap(t *testing.T) {
	tr, _ := NewTorus(4, 4)
	// 0 -> 3 is one hop west on the torus.
	if d := Distance(tr, 0, 3); d != 1 {
		t.Fatalf("wrap distance = %d, want 1", d)
	}
	if Diameter(tr) != 4 {
		t.Fatalf("torus diameter = %d, want 4", Diameter(tr))
	}
	// Torus has no dead ports.
	for a := 0; a < tr.Nodes(); a++ {
		for _, b := range tr.Neighbors(a) {
			if b < 0 {
				t.Fatal("torus has dead port")
			}
		}
	}
}

func TestHypercubeEcube(t *testing.T) {
	h, _ := NewHypercube(8)
	if d := Distance(h, 0, 7); d != 3 {
		t.Fatalf("distance 0->7 = %d, want 3 (popcount)", d)
	}
	if Diameter(h) != 3 {
		t.Fatalf("diameter = %d, want 3", Diameter(h))
	}
	// e-cube corrects lowest dimension first: 0 -> 6 (bits 110) goes via bit 1.
	if p := h.Route(0, 6); p != 1 {
		t.Fatalf("first port = %d, want 1", p)
	}
}

func TestHypercubeRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewHypercube(6); err == nil {
		t.Fatal("expected error")
	}
}

func TestStarRouting(t *testing.T) {
	s, _ := NewStar(5)
	if d := Distance(s, 1, 2); d != 2 {
		t.Fatalf("leaf-to-leaf = %d, want 2", d)
	}
	if d := Distance(s, 0, 3); d != 1 {
		t.Fatalf("hub-to-leaf = %d, want 1", d)
	}
	if Diameter(s) != 2 {
		t.Fatal("star diameter != 2")
	}
}

func TestFullIsDiameterOne(t *testing.T) {
	f, _ := NewFull(6)
	if Diameter(f) != 1 {
		t.Fatalf("diameter = %d", Diameter(f))
	}
	if Links(f) != 15 {
		t.Fatalf("links = %d, want n(n-1)/2 = 15", Links(f))
	}
}

func TestAvgDistance(t *testing.T) {
	f, _ := NewFull(4)
	if avg := AvgDistance(f); avg != 1 {
		t.Fatalf("full avg = %v, want 1", avg)
	}
	r, _ := NewRing(4)
	// distances from any node: 1,2,1 -> avg 4/3
	if avg := AvgDistance(r); avg < 1.32 || avg > 1.35 {
		t.Fatalf("ring(4) avg = %v, want ~1.333", avg)
	}
}

func TestNewFromConfig(t *testing.T) {
	cases := []Config{
		{Kind: Ring, Nodes: 4},
		{Kind: Mesh2D, DimX: 2, DimY: 2},
		{Kind: Torus2D, DimX: 2, DimY: 2},
		{Kind: Hypercube, Nodes: 4},
		{Kind: Star, Nodes: 4},
		{Kind: FullyConnected, Nodes: 4},
	}
	for _, c := range cases {
		tp, err := New(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if tp.Nodes() != 4 {
			t.Fatalf("%v: nodes = %d", c, tp.Nodes())
		}
	}
	if _, err := New(Config{Kind: "nope"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

// Property: routed distance on the torus never exceeds the analytic minimum
// bound w/2 + h/2, and equals the per-dimension shortest-way sum.
func TestTorusDistanceProperty(t *testing.T) {
	tr, _ := NewTorus(6, 4)
	f := func(a8, b8 uint8) bool {
		a := int(a8) % 24
		b := int(b8) % 24
		if a == b {
			return true
		}
		ax, ay := a%6, a/6
		bx, by := b%6, b/6
		dx := abs(bx - ax)
		if 6-dx < dx {
			dx = 6 - dx
		}
		dy := abs(by - ay)
		if 4-dy < dy {
			dy = 4 - dy
		}
		return Distance(tr, a, b) == dx+dy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDatelines(t *testing.T) {
	r, _ := NewRing(4)
	// Clockwise dateline at node n-1, counterclockwise at node 0.
	if !r.Dateline(3, 0) || !r.Dateline(0, 1) {
		t.Fatal("ring datelines missing at wrap edges")
	}
	if r.Dateline(1, 0) || r.Dateline(2, 1) {
		t.Fatal("ring dateline on a non-wrap edge")
	}
	if r.Dims() != 1 || r.PortDim(0) != 0 {
		t.Fatal("ring dims wrong")
	}

	tr, _ := NewTorus(4, 4)
	if tr.Dims() != 2 {
		t.Fatal("torus dims")
	}
	// East from x=3 wraps; east from x=1 does not.
	if !tr.Dateline(3, 0) || tr.Dateline(1, 0) {
		t.Fatal("torus x dateline wrong")
	}
	// North from y=3 (node 12..15) wraps.
	if !tr.Dateline(13, 2) || tr.Dateline(5, 2) {
		t.Fatal("torus y dateline wrong")
	}
	if tr.PortDim(0) != 0 || tr.PortDim(2) != 1 {
		t.Fatal("torus port dims wrong")
	}

	m, _ := NewMesh(3, 3)
	for n := 0; n < 9; n++ {
		for p := 0; p < 4; p++ {
			if m.Dateline(n, p) {
				t.Fatal("mesh (no wrap) must have no datelines")
			}
		}
	}

	h, _ := NewHypercube(8)
	if h.Dims() != 3 || h.PortDim(2) != 2 || h.Dateline(0, 0) {
		t.Fatal("hypercube dateline data wrong")
	}
	s, _ := NewStar(4)
	f, _ := NewFull(4)
	if s.Dateline(0, 0) || f.Dateline(0, 0) || s.Dims() != 1 || f.Dims() != 1 ||
		s.PortDim(0) != 0 || f.PortDim(0) != 0 {
		t.Fatal("star/full dateline data wrong")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewRing(1); err == nil {
		t.Error("ring(1)")
	}
	if _, err := NewMesh(1, 1); err == nil {
		t.Error("mesh(1x1)")
	}
	if _, err := NewTorus(1, 4); err == nil {
		t.Error("torus(1x4)")
	}
	if _, err := NewStar(1); err == nil {
		t.Error("star(1)")
	}
	if _, err := NewFull(1); err == nil {
		t.Error("full(1)")
	}
}

func TestMinimalPortsContainRouteAndReduceDistance(t *testing.T) {
	for _, tp := range all(t) {
		tp := tp
		t.Run(tp.Name(), func(t *testing.T) {
			n := tp.Nodes()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					ports := tp.MinimalPorts(a, b)
					if len(ports) == 0 {
						t.Fatalf("%d->%d: no minimal ports", a, b)
					}
					routePort := tp.Route(a, b)
					found := false
					d := Distance(tp, a, b)
					for _, p := range ports {
						if p == routePort {
							found = true
						}
						next := tp.Neighbors(a)[p]
						if next < 0 {
							t.Fatalf("%d->%d: minimal port %d is dead", a, b, p)
						}
						if nd := Distance(tp, next, b); nd != d-1 {
							t.Fatalf("%d->%d via %d: distance %d -> %d, not minimal", a, b, p, d, nd)
						}
					}
					if !found {
						t.Fatalf("%d->%d: deterministic port %d not in minimal set %v", a, b, routePort, ports)
					}
				}
			}
		})
	}
}

func TestHypercubeAdaptivity(t *testing.T) {
	h, _ := NewHypercube(8)
	if got := len(h.MinimalPorts(0, 7)); got != 3 {
		t.Fatalf("0->7 minimal ports = %d, want 3", got)
	}
}
