package trace

import (
	"testing"

	"mermaid/internal/ops"
)

// Local-operation batching must be allocation-free in steady state: the
// producer's batch buffers rotate through the recycling channel, so emitting
// and consuming local operations costs no garbage once the first buffers
// exist. A regression here multiplies by every instruction of every detailed
// simulation, so it is pinned.

func TestAllocFreeEmitNext(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	th := newThread(0, 1, 256)
	o := ops.NewCompute(1)
	cycle := func() {
		for i := 0; i < th.batchCap; i++ {
			th.Emit(o)
		}
		for i := 0; i < th.batchCap; i++ {
			if _, err := th.Next(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two warm-up cycles put both rotating buffers into circulation.
	cycle()
	cycle()
	if got := testing.AllocsPerRun(100, cycle); got != 0 {
		t.Errorf("Emit/Next batch cycle allocates %v times per cycle; want 0", got)
	}
}

func TestAllocFreeEmitNextBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	th := newThread(0, 1, 256)
	o := ops.NewCompute(1)
	cycle := func() {
		for i := 0; i < th.batchCap; i++ {
			th.Emit(o)
		}
		b, err := th.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != th.batchCap {
			t.Fatalf("batch of %d events, want %d", len(b), th.batchCap)
		}
	}
	cycle()
	cycle()
	if got := testing.AllocsPerRun(100, cycle); got != 0 {
		t.Errorf("Emit/NextBatch cycle allocates %v times per cycle; want 0", got)
	}
}
