package trace

import (
	"fmt"
	"io"
	"sync"

	"mermaid/internal/ops"
)

// Program is a multi-threaded trace-generating application: Body runs once
// per simulated node, each invocation in its own goroutine, exactly like the
// threaded instrumented programs of §3.1. The threads produce operation
// streams that the architecture simulator consumes; the per-thread handshake
// at global events implements physical-time interleaving.
// A program's goroutines live until their bodies return. If a simulation
// aborts early (trace error, deadlock), call Close to unblock and reap the
// threads still parked on emission or feedback; machines and programs are
// single-use, so treat an aborted run's program as consumed.
type Program struct {
	// Threads is the number of application threads (= simulated nodes).
	Threads int
	// Body is the per-thread program. It may run ahead of the simulator on
	// local operations but is suspended at every global event.
	Body func(t *Thread)
	// Buffer is the per-thread local-operation buffer depth (how far a
	// thread may run ahead); 0 selects a default.
	Buffer int

	threads []*Thread
}

// DefaultBuffer is the run-ahead window for local operations.
const DefaultBuffer = 4096

// defaultBatch is the local-operation batch size: how many local operations
// accumulate thread-side before one channel operation hands them to the
// simulator. Global events always flush, so the batch factor only amortises
// traffic that needs no synchronisation.
const defaultBatch = 64

// Start launches the program's threads and returns one Source per thread for
// the simulator to consume. Each thread's stream ends (io.EOF) when its body
// returns.
func (pr *Program) Start() []*Thread {
	if pr.Threads <= 0 {
		panic("trace: program with no threads")
	}
	buf := pr.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	threads := make([]*Thread, pr.Threads)
	for i := range threads {
		threads[i] = newThread(i, pr.Threads, buf)
	}
	pr.threads = threads
	for _, t := range threads {
		t := t
		go func() {
			defer close(t.ch)
			defer func() {
				v := recover()
				if v == nil {
					// Body returned: hand over any batched tail.
					t.tryFlush()
					return
				}
				if _, stopped := v.(threadStopped); stopped {
					// Close unwound the thread; nothing to report.
					return
				}
				// Deliver the panic to the consumer side instead of killing
				// the host process — unless the consumer is gone already.
				// Locals emitted before the panic are flushed first so the
				// consumer sees everything that actually executed.
				t.tryFlush()
				select {
				case t.ch <- []Event{{Op: ops.Op{}, Payload: threadPanic{v}}}:
				case <-t.done:
				}
			}()
			pr.Body(t)
		}()
	}
	return threads
}

// Close cancels the program's generator threads: every thread parked on
// emission or awaiting simulator feedback unwinds (running its deferred
// calls) and its goroutine exits, instead of staying parked for the process
// lifetime. Call it when a simulation aborts early; after a completed run it
// is a harmless no-op. Close is idempotent. It must not be called while a
// simulator is still actively driving the threads, and the consumer side
// must not rely on Next after Close (the streams end).
func (pr *Program) Close() {
	for _, t := range pr.threads {
		t.Close()
	}
}

type threadPanic struct{ v any }

// threadStopped is the sentinel panic that unwinds a generator goroutine
// when its thread is closed.
type threadStopped struct{}

// Thread is the generator side of one application thread plus the consumer
// side used by the simulator (Next/NextBatch). Producer methods (Emit, Send,
// Recv, …) must only be called from the thread's body; Next/NextBatch only
// from the simulator.
//
// Local operations are batched: Emit appends to a thread-side slice that is
// handed to the simulator in a single channel operation when it reaches the
// batch size — or immediately, together with the pending locals, when a
// global event forces synchronisation. Exhausted batch buffers are recycled
// back to the producer, so steady-state emission does not allocate.
type Thread struct {
	id     int
	n      int
	ch     chan []Event
	resume chan Feedback
	done   chan struct{}
	once   sync.Once

	emitted    uint64
	nextHandle uint64

	// Producer side: the batch under construction and the recycling channel
	// feeding empty buffers back from the consumer.
	batch    []Event
	batchCap int
	freeCh   chan []Event

	// Consumer side: the batch currently being drained (Next) or on loan to
	// the caller (NextBatch).
	cur    []Event
	curPos int
	lent   []Event
}

// newThread builds one thread with its batching geometry derived from the
// run-ahead buffer depth: batches never exceed the buffer, and the channel
// holds enough batches to keep the same run-ahead window.
func newThread(id, n, buffer int) *Thread {
	batch := defaultBatch
	if batch > buffer {
		batch = buffer
	}
	depth := buffer / batch
	if depth < 1 {
		depth = 1
	}
	return &Thread{
		id:       id,
		n:        n,
		ch:       make(chan []Event, depth),
		resume:   make(chan Feedback),
		done:     make(chan struct{}),
		batchCap: batch,
		freeCh:   make(chan []Event, depth+2),
	}
}

// Close cancels this thread's generator goroutine (see Program.Close). It is
// idempotent and safe to call from any goroutine.
func (t *Thread) Close() {
	t.once.Do(func() { close(t.done) })
}

// deliverBatch hands a batch to the consumer, unwinding the generator if the
// thread was closed while parked (buffer full, consumer gone).
func (t *Thread) deliverBatch(b []Event) {
	select {
	case <-t.done:
		panic(threadStopped{})
	default:
	}
	select {
	case t.ch <- b:
	case <-t.done:
		panic(threadStopped{})
	}
}

// flush hands the pending batch to the consumer and starts a fresh one,
// reusing a recycled buffer when available.
func (t *Thread) flush() {
	if len(t.batch) == 0 {
		return
	}
	b := t.batch
	select {
	case nb := <-t.freeCh:
		t.batch = nb
	default:
		t.batch = make([]Event, 0, t.batchCap+1)
	}
	t.deliverBatch(b)
}

// tryFlush is flush for unwinding contexts: a close racing the final flush
// must not escape as a panic.
func (t *Thread) tryFlush() {
	defer func() {
		if v := recover(); v != nil {
			if _, stopped := v.(threadStopped); !stopped {
				panic(v)
			}
		}
	}()
	t.flush()
}

// recycle clears an exhausted batch and returns it to the producer.
func (t *Thread) recycle(b []Event) {
	clear(b)
	select {
	case t.freeCh <- b[:0]:
	default:
	}
}

// ID returns the thread's node rank.
func (t *Thread) ID() int { return t.id }

// Threads returns the total number of threads in the program.
func (t *Thread) Threads() int { return t.n }

// Emitted returns the number of operations emitted so far.
func (t *Thread) Emitted() uint64 { return t.emitted }

// Next implements Source for the simulator. It blocks (on the host) until
// the generator thread has produced the next operation — the execution-
// driven coupling of trace generation and simulation. Operations arrive a
// batch at a time under the hood; Next serves them from the current batch
// without further synchronisation.
func (t *Thread) Next() (Event, error) {
	for t.curPos >= len(t.cur) {
		if t.cur != nil {
			t.recycle(t.cur)
			t.cur, t.curPos = nil, 0
		}
		b, open := <-t.ch
		if !open {
			return Event{}, io.EOF
		}
		t.cur, t.curPos = b, 0
	}
	ev := t.cur[t.curPos]
	t.curPos++
	if tp, isPanic := ev.Payload.(threadPanic); isPanic {
		return Event{}, fmt.Errorf("trace: thread %d panicked: %v", t.id, tp.v)
	}
	return ev, nil
}

// NextBatch implements BatchSource: it returns the thread's next batch of
// operations in one synchronisation. The returned slice is only valid until
// the next NextBatch call (the buffer is recycled to the producer then).
func (t *Thread) NextBatch() ([]Event, error) {
	if t.curPos < len(t.cur) {
		// Leftover from single-event consumption; hand over the remainder.
		b := t.cur[t.curPos:]
		t.lent = t.cur
		t.cur, t.curPos = nil, 0
		return b, nil
	}
	if t.cur != nil {
		t.lent = t.cur
		t.cur, t.curPos = nil, 0
	}
	if t.lent != nil {
		t.recycle(t.lent)
		t.lent = nil
	}
	b, open := <-t.ch
	if !open {
		return nil, io.EOF
	}
	if len(b) > 0 {
		if tp, isPanic := b[0].Payload.(threadPanic); isPanic {
			return nil, fmt.Errorf("trace: thread %d panicked: %v", t.id, tp.v)
		}
	}
	t.lent = b
	return b, nil
}

// Emit produces a local (non-global) operation. The thread runs ahead
// freely: local operations cannot be influenced by other processors, so no
// synchronisation with the simulator is needed (§2); batching amortises even
// the channel handoff across defaultBatch operations.
func (t *Thread) Emit(o ops.Op) {
	if o.Kind.IsGlobalEvent() {
		panic(fmt.Sprintf("trace: Emit of global event %s; use Send/Recv", o.Kind))
	}
	t.emitted++
	if t.batch == nil {
		t.batch = make([]Event, 0, t.batchCap+1)
	}
	t.batch = append(t.batch, Event{Op: o})
	if len(t.batch) >= t.batchCap {
		t.flush()
	}
}

// emitGlobal produces a global event and suspends until the simulator
// resumes the thread. The pending local batch travels in the same channel
// operation, ahead of the global event, preserving per-thread order; the
// per-operation handshake of physical-time interleaving is untouched.
func (t *Thread) emitGlobal(o ops.Op, payload any) Feedback {
	t.emitted++
	if t.batch == nil {
		t.batch = make([]Event, 0, t.batchCap+1)
	}
	t.batch = append(t.batch, Event{Op: o, Payload: payload, Resume: t.resume})
	t.flush()
	select {
	case fb := <-t.resume:
		return fb
	case <-t.done:
		panic(threadStopped{})
	}
}

// Send performs a synchronous (blocking) send: the thread suspends until the
// message has been delivered to — and accepted by — the destination on the
// simulated machine.
func (t *Thread) Send(dst int, size uint32, tag uint32, payload any) {
	t.emitGlobal(ops.NewSend(size, int32(dst), tag), payload)
}

// ASend performs an asynchronous send: the thread suspends only until the
// simulator has accepted the message for injection.
func (t *Thread) ASend(dst int, size uint32, tag uint32, payload any) {
	t.emitGlobal(ops.NewASend(size, int32(dst), tag), payload)
}

// Recv performs a synchronous receive from the given source, returning the
// message payload once it has arrived in simulated time.
func (t *Thread) Recv(src int, tag uint32) any {
	fb := t.emitGlobal(ops.NewRecv(int32(src), tag), nil)
	return fb.Payload
}

// RecvAny receives from any source. Which message matches is decided by the
// architecture simulator — the feedback loop that makes the trace the one
// the target machine would produce. It returns the actual source and the
// payload.
func (t *Thread) RecvAny(tag uint32) (int, any) {
	fb := t.emitGlobal(ops.NewRecv(ops.AnyPeer, tag), nil)
	return int(fb.Peer), fb.Payload
}

// ARecv posts an asynchronous receive and returns immediately with a handle;
// the thread continues generating trace while the message is in flight.
// Consume the data with Wait, which emits the WaitRecv completion
// pseudo-operation.
func (t *Thread) ARecv(src int, tag uint32) *RecvHandle {
	h := t.nextHandle
	t.nextHandle++
	o := ops.NewARecv(int32(src), tag)
	o.Addr = h
	t.emitGlobal(o, nil)
	return &RecvHandle{t: t, id: h}
}

// ARecvAny posts an asynchronous receive from any source.
func (t *Thread) ARecvAny(tag uint32) *RecvHandle {
	h := t.nextHandle
	t.nextHandle++
	o := ops.NewARecv(ops.AnyPeer, tag)
	o.Addr = h
	t.emitGlobal(o, nil)
	return &RecvHandle{t: t, id: h}
}

// RecvHandle is an outstanding asynchronous receive.
type RecvHandle struct {
	t    *Thread
	id   uint64
	done bool
	fb   Feedback
}

// Wait suspends the application thread until the receive has completed in
// simulated time, returning the source and payload. The suspension is
// visible to the simulator as a WaitRecv pseudo-operation. Wait is
// idempotent: further calls return the same result without re-suspending.
func (h *RecvHandle) Wait() (int, any) {
	if !h.done {
		h.fb = h.t.emitGlobal(ops.NewWaitRecv(h.id), nil)
		h.done = true
	}
	return int(h.fb.Peer), h.fb.Payload
}
