package trace

import (
	"fmt"
	"io"
	"sync"

	"mermaid/internal/ops"
)

// Program is a multi-threaded trace-generating application: Body runs once
// per simulated node, each invocation in its own goroutine, exactly like the
// threaded instrumented programs of §3.1. The threads produce operation
// streams that the architecture simulator consumes; the per-thread handshake
// at global events implements physical-time interleaving.
// A program's goroutines live until their bodies return. If a simulation
// aborts early (trace error, deadlock), call Close to unblock and reap the
// threads still parked on emission or feedback; machines and programs are
// single-use, so treat an aborted run's program as consumed.
type Program struct {
	// Threads is the number of application threads (= simulated nodes).
	Threads int
	// Body is the per-thread program. It may run ahead of the simulator on
	// local operations but is suspended at every global event.
	Body func(t *Thread)
	// Buffer is the per-thread local-operation buffer depth (how far a
	// thread may run ahead); 0 selects a default.
	Buffer int

	threads []*Thread
}

// DefaultBuffer is the run-ahead window for local operations.
const DefaultBuffer = 4096

// Start launches the program's threads and returns one Source per thread for
// the simulator to consume. Each thread's stream ends (io.EOF) when its body
// returns.
func (pr *Program) Start() []*Thread {
	if pr.Threads <= 0 {
		panic("trace: program with no threads")
	}
	buf := pr.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	threads := make([]*Thread, pr.Threads)
	for i := range threads {
		threads[i] = &Thread{
			id:     i,
			n:      pr.Threads,
			ch:     make(chan Event, buf),
			resume: make(chan Feedback),
			done:   make(chan struct{}),
		}
	}
	pr.threads = threads
	for _, t := range threads {
		t := t
		go func() {
			defer close(t.ch)
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if _, stopped := v.(threadStopped); stopped {
					// Close unwound the thread; nothing to report.
					return
				}
				// Deliver the panic to the consumer side instead of killing
				// the host process — unless the consumer is gone already.
				select {
				case t.ch <- Event{Op: ops.Op{}, Payload: threadPanic{v}}:
				case <-t.done:
				}
			}()
			pr.Body(t)
		}()
	}
	return threads
}

// Close cancels the program's generator threads: every thread parked on
// emission or awaiting simulator feedback unwinds (running its deferred
// calls) and its goroutine exits, instead of staying parked for the process
// lifetime. Call it when a simulation aborts early; after a completed run it
// is a harmless no-op. Close is idempotent. It must not be called while a
// simulator is still actively driving the threads, and the consumer side
// must not rely on Next after Close (the streams end).
func (pr *Program) Close() {
	for _, t := range pr.threads {
		t.Close()
	}
}

type threadPanic struct{ v any }

// threadStopped is the sentinel panic that unwinds a generator goroutine
// when its thread is closed.
type threadStopped struct{}

// Thread is the generator side of one application thread plus the consumer
// side used by the simulator (Next). Producer methods (Emit, Send, Recv, …)
// must only be called from the thread's body; Next only from the simulator.
type Thread struct {
	id     int
	n      int
	ch     chan Event
	resume chan Feedback
	done   chan struct{}
	once   sync.Once

	emitted    uint64
	nextHandle uint64
}

// Close cancels this thread's generator goroutine (see Program.Close). It is
// idempotent and safe to call from any goroutine.
func (t *Thread) Close() {
	t.once.Do(func() { close(t.done) })
}

// deliver hands one event to the consumer, unwinding the generator if the
// thread was closed while parked (buffer full, consumer gone).
func (t *Thread) deliver(ev Event) {
	select {
	case <-t.done:
		panic(threadStopped{})
	default:
	}
	select {
	case t.ch <- ev:
	case <-t.done:
		panic(threadStopped{})
	}
}

// ID returns the thread's node rank.
func (t *Thread) ID() int { return t.id }

// Threads returns the total number of threads in the program.
func (t *Thread) Threads() int { return t.n }

// Emitted returns the number of operations emitted so far.
func (t *Thread) Emitted() uint64 { return t.emitted }

// Next implements Source for the simulator. It blocks (on the host) until
// the generator thread has produced the next operation — the execution-
// driven coupling of trace generation and simulation.
func (t *Thread) Next() (Event, error) {
	ev, open := <-t.ch
	if !open {
		return Event{}, io.EOF
	}
	if tp, isPanic := ev.Payload.(threadPanic); isPanic {
		return Event{}, fmt.Errorf("trace: thread %d panicked: %v", t.id, tp.v)
	}
	return ev, nil
}

// Emit produces a local (non-global) operation. The thread runs ahead
// freely: local operations cannot be influenced by other processors, so no
// synchronisation with the simulator is needed (§2).
func (t *Thread) Emit(o ops.Op) {
	if o.Kind.IsGlobalEvent() {
		panic(fmt.Sprintf("trace: Emit of global event %s; use Send/Recv", o.Kind))
	}
	t.emitted++
	t.deliver(Event{Op: o})
}

// emitGlobal produces a global event and suspends until the simulator
// resumes the thread.
func (t *Thread) emitGlobal(o ops.Op, payload any) Feedback {
	t.emitted++
	t.deliver(Event{Op: o, Payload: payload, Resume: t.resume})
	select {
	case fb := <-t.resume:
		return fb
	case <-t.done:
		panic(threadStopped{})
	}
}

// Send performs a synchronous (blocking) send: the thread suspends until the
// message has been delivered to — and accepted by — the destination on the
// simulated machine.
func (t *Thread) Send(dst int, size uint32, tag uint32, payload any) {
	t.emitGlobal(ops.NewSend(size, int32(dst), tag), payload)
}

// ASend performs an asynchronous send: the thread suspends only until the
// simulator has accepted the message for injection.
func (t *Thread) ASend(dst int, size uint32, tag uint32, payload any) {
	t.emitGlobal(ops.NewASend(size, int32(dst), tag), payload)
}

// Recv performs a synchronous receive from the given source, returning the
// message payload once it has arrived in simulated time.
func (t *Thread) Recv(src int, tag uint32) any {
	fb := t.emitGlobal(ops.NewRecv(int32(src), tag), nil)
	return fb.Payload
}

// RecvAny receives from any source. Which message matches is decided by the
// architecture simulator — the feedback loop that makes the trace the one
// the target machine would produce. It returns the actual source and the
// payload.
func (t *Thread) RecvAny(tag uint32) (int, any) {
	fb := t.emitGlobal(ops.NewRecv(ops.AnyPeer, tag), nil)
	return int(fb.Peer), fb.Payload
}

// ARecv posts an asynchronous receive and returns immediately with a handle;
// the thread continues generating trace while the message is in flight.
// Consume the data with Wait, which emits the WaitRecv completion
// pseudo-operation.
func (t *Thread) ARecv(src int, tag uint32) *RecvHandle {
	h := t.nextHandle
	t.nextHandle++
	o := ops.NewARecv(int32(src), tag)
	o.Addr = h
	t.emitGlobal(o, nil)
	return &RecvHandle{t: t, id: h}
}

// ARecvAny posts an asynchronous receive from any source.
func (t *Thread) ARecvAny(tag uint32) *RecvHandle {
	h := t.nextHandle
	t.nextHandle++
	o := ops.NewARecv(ops.AnyPeer, tag)
	o.Addr = h
	t.emitGlobal(o, nil)
	return &RecvHandle{t: t, id: h}
}

// RecvHandle is an outstanding asynchronous receive.
type RecvHandle struct {
	t    *Thread
	id   uint64
	done bool
	fb   Feedback
}

// Wait suspends the application thread until the receive has completed in
// simulated time, returning the source and payload. The suspension is
// visible to the simulator as a WaitRecv pseudo-operation. Wait is
// idempotent: further calls return the same result without re-suspending.
func (h *RecvHandle) Wait() (int, any) {
	if !h.done {
		h.fb = h.t.emitGlobal(ops.NewWaitRecv(h.id), nil)
		h.done = true
	}
	return int(h.fb.Peer), h.fb.Payload
}
