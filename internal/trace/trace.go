// Package trace provides the interface between the application level and the
// architecture level of the workbench: streams of operations, and the
// multi-threaded, execution-driven trace generation with physical-time
// interleaving that keeps multiprocessor traces valid (§2, §3.1 of the
// paper).
//
// A trace-generating application runs as one goroutine per simulated node.
// Local operations flow freely (buffered) from the generator to the
// simulator. At every global event — an operation that can influence other
// processors — the generating thread suspends until the architecture
// simulator explicitly resumes it, feeding back what actually happened on
// the target machine (which source's message arrived first, what data it
// carried). The trace therefore is exactly the one that would be observed if
// the application executed on the target machine.
package trace

import (
	"fmt"
	"io"

	"mermaid/internal/ops"
)

// Feedback is what the simulator tells a suspended generator thread when
// resuming it after a global event.
type Feedback struct {
	// Peer is the actual communication partner: for a receive from AnyPeer,
	// the source whose message arrived first in simulated time.
	Peer int32
	// Tag echoes the message tag.
	Tag uint32
	// Payload carries the real data between application threads, routed
	// through the simulator so that data availability follows simulated
	// time.
	Payload any
}

// Event is one element of a generated trace: the operation plus the
// generator-side plumbing for global events.
type Event struct {
	Op ops.Op
	// Payload is the message data carried by send operations.
	Payload any
	// Resume, when non-nil, must receive exactly one Feedback when the
	// simulator has handled the global event; the generator thread is
	// suspended on it meanwhile.
	Resume chan Feedback
}

// Source yields a node's operation stream in execution order. Next returns
// io.EOF after the last event.
type Source interface {
	Next() (Event, error)
}

// SliceSource replays a fixed operation slice (trace-driven simulation).
type SliceSource struct {
	trace []ops.Op
	pos   int
}

// FromOps wraps an operation slice as a Source.
func FromOps(trace []ops.Op) *SliceSource { return &SliceSource{trace: trace} }

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.trace) {
		return Event{}, io.EOF
	}
	o := s.trace[s.pos]
	s.pos++
	return Event{Op: o}, nil
}

// ReaderSource replays a binary trace stream.
type ReaderSource struct {
	r *ops.Reader
}

// FromReader wraps a binary trace stream as a Source.
func FromReader(r io.Reader) *ReaderSource { return &ReaderSource{r: ops.NewReader(r)} }

// Next implements Source.
func (s *ReaderSource) Next() (Event, error) {
	o, err := s.r.Read()
	if err != nil {
		return Event{}, err
	}
	return Event{Op: o}, nil
}

// FuncSource adapts a generator function to a Source.
type FuncSource func() (Event, error)

// Next implements Source.
func (f FuncSource) Next() (Event, error) { return f() }

// Tee wraps a source, appending every operation that passes through to a
// writer — the mechanism the hybrid model uses to export traces (e.g.
// task-level traces derived from an instruction-level run).
type Tee struct {
	src Source
	w   *ops.Writer
}

// NewTee creates a tee of src into w.
func NewTee(src Source, w io.Writer) *Tee {
	return &Tee{src: src, w: ops.NewWriter(w)}
}

// Next implements Source.
func (t *Tee) Next() (Event, error) {
	ev, err := t.src.Next()
	if err != nil {
		if err == io.EOF {
			if ferr := t.w.Flush(); ferr != nil {
				return Event{}, ferr
			}
		}
		return Event{}, err
	}
	if werr := t.w.Write(ev.Op); werr != nil {
		return Event{}, werr
	}
	return ev, nil
}

// Collect drains a source into a slice (for tests and analysis).
func Collect(src Source) ([]ops.Op, error) {
	var out []ops.Op
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if ev.Resume != nil {
			return out, fmt.Errorf("trace: Collect cannot service global events; use a simulator")
		}
		out = append(out, ev.Op)
	}
}
