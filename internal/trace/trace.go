// Package trace provides the interface between the application level and the
// architecture level of the workbench: streams of operations, and the
// multi-threaded, execution-driven trace generation with physical-time
// interleaving that keeps multiprocessor traces valid (§2, §3.1 of the
// paper).
//
// A trace-generating application runs as one goroutine per simulated node.
// Local operations flow freely (buffered, and batched — many operations per
// channel handoff) from the generator to the simulator. At every global
// event — an operation that can influence other processors — the generating
// thread suspends until the architecture simulator explicitly resumes it,
// feeding back what actually happened on the target machine (which source's
// message arrived first, what data it carried). The trace therefore is
// exactly the one that would be observed if the application executed on the
// target machine.
package trace

import (
	"fmt"
	"io"

	"mermaid/internal/ops"
)

// Feedback is what the simulator tells a suspended generator thread when
// resuming it after a global event.
type Feedback struct {
	// Peer is the actual communication partner: for a receive from AnyPeer,
	// the source whose message arrived first in simulated time.
	Peer int32
	// Tag echoes the message tag.
	Tag uint32
	// Payload carries the real data between application threads, routed
	// through the simulator so that data availability follows simulated
	// time.
	Payload any
}

// Event is one element of a generated trace: the operation plus the
// generator-side plumbing for global events.
type Event struct {
	Op ops.Op
	// Payload is the message data carried by send operations.
	Payload any
	// Resume, when non-nil, must receive exactly one Feedback when the
	// simulator has handled the global event; the generator thread is
	// suspended on it meanwhile.
	Resume chan Feedback
}

// Source yields a node's operation stream in execution order. Next returns
// io.EOF after the last event.
type Source interface {
	Next() (Event, error)
}

// BatchSource is implemented by sources that can hand over many operations
// per pull. A returned batch is non-empty, in execution order, and only
// valid until the next NextBatch call (implementations may recycle the
// backing buffer). Consumers that drain sources in a hot loop should go
// through a Cursor, which uses batch pulls when available.
type BatchSource interface {
	Source
	NextBatch() ([]Event, error)
}

// Cursor drains a Source batch-at-a-time: one interface call per batch
// instead of per operation, and for Thread sources one channel operation per
// batch. A Cursor over a plain (non-batch) Source degrades to per-event
// Next. The zero Cursor is not usable; create cursors with NewCursor.
type Cursor struct {
	src   Source
	batch BatchSource // nil when src has no batch support
	buf   []Event
	pos   int
}

// NewCursor wraps src for batched consumption.
func NewCursor(src Source) *Cursor {
	c := &Cursor{src: src}
	if bs, ok := src.(BatchSource); ok {
		c.batch = bs
	}
	return c
}

// Next returns the next event, pulling a fresh batch from the underlying
// source when the current one is exhausted. It returns io.EOF after the last
// event.
func (c *Cursor) Next() (Event, error) {
	if c.pos < len(c.buf) {
		ev := c.buf[c.pos]
		c.pos++
		return ev, nil
	}
	if c.batch == nil {
		return c.src.Next()
	}
	for {
		b, err := c.batch.NextBatch()
		if err != nil {
			return Event{}, err
		}
		if len(b) == 0 {
			continue
		}
		c.buf, c.pos = b, 1
		return b[0], nil
	}
}

// sourceBatch is the conversion chunk size for sources that materialise
// Event batches from a non-Event backing store.
const sourceBatch = 256

// SliceSource replays a fixed operation slice (trace-driven simulation).
type SliceSource struct {
	trace []ops.Op
	pos   int
	buf   []Event // reusable batch buffer for NextBatch
}

// FromOps wraps an operation slice as a Source.
func FromOps(trace []ops.Op) *SliceSource { return &SliceSource{trace: trace} }

// Next implements Source.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.trace) {
		return Event{}, io.EOF
	}
	o := s.trace[s.pos]
	s.pos++
	return Event{Op: o}, nil
}

// NextBatch implements BatchSource: it converts up to sourceBatch operations
// into a reused Event buffer, valid until the next call.
func (s *SliceSource) NextBatch() ([]Event, error) {
	if s.pos >= len(s.trace) {
		return nil, io.EOF
	}
	n := len(s.trace) - s.pos
	if n > sourceBatch {
		n = sourceBatch
	}
	if cap(s.buf) < n {
		s.buf = make([]Event, n)
	}
	b := s.buf[:n]
	for i := 0; i < n; i++ {
		b[i] = Event{Op: s.trace[s.pos+i]}
	}
	s.pos += n
	return b, nil
}

// ReaderSource replays a binary trace stream.
type ReaderSource struct {
	r   *ops.Reader
	buf []Event // reusable batch buffer for NextBatch
	err error   // deferred error: delivered after the batch read so far
}

// FromReader wraps a binary trace stream as a Source.
func FromReader(r io.Reader) *ReaderSource { return &ReaderSource{r: ops.NewReader(r)} }

// Next implements Source.
func (s *ReaderSource) Next() (Event, error) {
	if s.err != nil {
		err := s.err
		s.err = nil
		return Event{}, err
	}
	o, err := s.r.Read()
	if err != nil {
		return Event{}, err
	}
	return Event{Op: o}, nil
}

// NextBatch implements BatchSource: it decodes up to sourceBatch operations
// per call into a reused buffer, valid until the next call. A decode error
// or EOF hit mid-batch is returned on the following call, after the
// operations read before it.
func (s *ReaderSource) NextBatch() ([]Event, error) {
	if s.err != nil {
		err := s.err
		s.err = nil
		return nil, err
	}
	if s.buf == nil {
		s.buf = make([]Event, sourceBatch)
	}
	n := 0
	for n < len(s.buf) {
		o, err := s.r.Read()
		if err != nil {
			if n == 0 {
				return nil, err
			}
			s.err = err
			break
		}
		s.buf[n] = Event{Op: o}
		n++
	}
	return s.buf[:n], nil
}

// FuncSource adapts a generator function to a Source.
type FuncSource func() (Event, error)

// Next implements Source.
func (f FuncSource) Next() (Event, error) { return f() }

// Tee wraps a source, appending every operation that passes through to a
// writer — the mechanism the hybrid model uses to export traces (e.g.
// task-level traces derived from an instruction-level run).
type Tee struct {
	src Source
	w   *ops.Writer
}

// NewTee creates a tee of src into w.
func NewTee(src Source, w io.Writer) *Tee {
	return &Tee{src: src, w: ops.NewWriter(w)}
}

// Next implements Source.
func (t *Tee) Next() (Event, error) {
	ev, err := t.src.Next()
	if err != nil {
		if err == io.EOF {
			if ferr := t.w.Flush(); ferr != nil {
				return Event{}, ferr
			}
		}
		return Event{}, err
	}
	if werr := t.w.Write(ev.Op); werr != nil {
		return Event{}, werr
	}
	return ev, nil
}

// Collect drains a source into a slice (for tests and analysis).
func Collect(src Source) ([]ops.Op, error) {
	var out []ops.Op
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if ev.Resume != nil {
			return out, fmt.Errorf("trace: Collect cannot service global events; use a simulator")
		}
		out = append(out, ev.Op)
	}
}
