package trace

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"mermaid/internal/ops"
)

func TestSliceSource(t *testing.T) {
	trace := []ops.Op{ops.NewArith(ops.Add, ops.TypeInt), ops.NewLoad(ops.MemWord, 8)}
	src := FromOps(trace)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != trace[0] || got[1] != trace[1] {
		t.Fatalf("got %v", got)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReaderSource(t *testing.T) {
	trace := []ops.Op{ops.NewIFetch(4), ops.NewCompute(10)}
	var buf bytes.Buffer
	if err := ops.WriteAll(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(FromReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != trace[1] {
		t.Fatalf("got %v", got)
	}
}

func TestTeeCopiesTrace(t *testing.T) {
	trace := []ops.Op{ops.NewIFetch(4), ops.NewLoad(ops.MemWord, 16), ops.NewCompute(3)}
	var buf bytes.Buffer
	tee := NewTee(FromOps(trace), &buf)
	if _, err := Collect(tee); err != nil {
		t.Fatal(err)
	}
	// Drain past EOF to flush.
	if _, err := tee.Next(); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
	back, err := ops.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("tee wrote %d ops, want %d", len(back), len(trace))
	}
}

func TestProgramLocalOps(t *testing.T) {
	pr := &Program{
		Threads: 2,
		Body: func(th *Thread) {
			for i := 0; i < 5; i++ {
				th.Emit(ops.NewArith(ops.Add, ops.TypeInt))
			}
		},
	}
	threads := pr.Start()
	for i, th := range threads {
		got, err := Collect(th)
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		if len(got) != 5 {
			t.Fatalf("thread %d: %d ops", i, len(got))
		}
	}
}

func TestProgramThreadIdentity(t *testing.T) {
	ids := make(chan int, 3)
	pr := &Program{
		Threads: 3,
		Body: func(th *Thread) {
			if th.Threads() != 3 {
				t.Errorf("Threads() = %d", th.Threads())
			}
			ids <- th.ID()
		},
	}
	for _, th := range pr.Start() {
		if _, err := Collect(th); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		seen[<-ids] = true
	}
	if len(seen) != 3 {
		t.Fatalf("ids = %v", seen)
	}
}

func TestProgramGlobalEventSuspendsUntilResumed(t *testing.T) {
	order := make(chan string, 10)
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			order <- "before-send"
			th.Send(0, 64, 0, "payload")
			order <- "after-send"
		},
	}
	th := pr.Start()[0]
	ev, err := th.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Op.Kind != ops.Send || ev.Payload != "payload" || ev.Resume == nil {
		t.Fatalf("event = %+v", ev)
	}
	if got := <-order; got != "before-send" {
		t.Fatalf("order: %s", got)
	}
	select {
	case s := <-order:
		t.Fatalf("thread ran past global event: %s", s)
	default:
	}
	ev.Resume <- Feedback{}
	if got := <-order; got != "after-send" {
		t.Fatalf("order: %s", got)
	}
	if _, err := th.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestProgramRecvFeedbackCarriesData(t *testing.T) {
	var got any
	var gotSrc int
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			gotSrc, got = th.RecvAny(7)
		},
	}
	th := pr.Start()[0]
	ev, err := th.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Op.Kind != ops.Recv || ev.Op.Peer != ops.AnyPeer || ev.Op.Tag != 7 {
		t.Fatalf("op = %v", ev.Op)
	}
	ev.Resume <- Feedback{Peer: 3, Tag: 7, Payload: []int{1, 2}}
	if _, err := th.Next(); err != io.EOF {
		t.Fatal(err)
	}
	if gotSrc != 3 || got == nil {
		t.Fatalf("feedback src=%d payload=%v", gotSrc, got)
	}
}

func TestProgramARecvThenWait(t *testing.T) {
	var result any
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			h := th.ARecv(2, 0)
			th.Emit(ops.NewArith(ops.Add, ops.TypeInt)) // overlap
			_, result = h.Wait()
		},
	}
	th := pr.Start()[0]
	// arecv post
	ev, _ := th.Next()
	if ev.Op.Kind != ops.ARecv || ev.Op.Addr != 0 {
		t.Fatalf("first op = %v", ev.Op)
	}
	ev.Resume <- Feedback{} // ack the post
	// overlapped local op
	ev, _ = th.Next()
	if ev.Op.Kind != ops.Add {
		t.Fatalf("second op = %v", ev.Op)
	}
	// wait completion
	ev, _ = th.Next()
	if ev.Op.Kind != ops.WaitRecv || ev.Op.Addr != 0 {
		t.Fatalf("third op = %v", ev.Op)
	}
	ev.Resume <- Feedback{Peer: 2, Payload: "data"}
	if _, err := th.Next(); err != io.EOF {
		t.Fatal(err)
	}
	if result != "data" {
		t.Fatalf("result = %v", result)
	}
}

func TestWaitIdempotent(t *testing.T) {
	var a, b any
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			h := th.ARecv(0, 0)
			_, a = h.Wait()
			_, b = h.Wait() // no second suspension
		},
	}
	th := pr.Start()[0]
	ev, _ := th.Next()
	ev.Resume <- Feedback{} // post ack
	ev, _ = th.Next()
	if ev.Op.Kind != ops.WaitRecv {
		t.Fatalf("op = %v", ev.Op)
	}
	ev.Resume <- Feedback{Payload: 42}
	if _, err := th.Next(); err != io.EOF {
		t.Fatal(err)
	}
	if a != 42 || b != 42 {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestEmitRejectsGlobalEvents(t *testing.T) {
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			th.Emit(ops.NewSend(1, 0, 0)) // must panic -> surfaced by Next
		},
	}
	th := pr.Start()[0]
	if _, err := th.Next(); err == nil {
		t.Fatal("expected panic surfaced as error")
	}
}

func TestThreadPanicSurfaced(t *testing.T) {
	pr := &Program{
		Threads: 1,
		Body:    func(th *Thread) { panic("app bug") },
	}
	th := pr.Start()[0]
	if _, err := th.Next(); err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestCollectRefusesGlobalEvents(t *testing.T) {
	pr := &Program{
		Threads: 1,
		Body:    func(th *Thread) { th.Send(0, 8, 0, nil) },
	}
	th := pr.Start()[0]
	if _, err := Collect(th); err == nil {
		t.Fatal("Collect must refuse global events")
	}
}

// waitGoroutines polls until the goroutine count drops back to at most want,
// failing after a deadline.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d alive, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseReapsParkedThreads is the regression test for the generator-
// goroutine leak: threads of an abandoned run — parked on a full emission
// buffer or awaiting global-event feedback — must exit once the program is
// closed, or a farm running thousands of simulations in one process
// accumulates them forever.
func TestCloseReapsParkedThreads(t *testing.T) {
	before := runtime.NumGoroutine()
	const programs = 20
	for i := 0; i < programs; i++ {
		pr := &Program{
			Threads: 4,
			Buffer:  2,
			Body: func(th *Thread) {
				// Thread 0 parks awaiting feedback for its global event;
				// the rest overrun the local buffer and park on emission.
				if th.ID() == 0 {
					th.Send(1, 64, 0, nil)
				}
				for j := 0; j < 100; j++ {
					th.Emit(ops.NewArith(ops.Add, ops.TypeInt))
				}
			},
		}
		threads := pr.Start()
		// Simulate an aborted run: consume a single event, then give up.
		if _, err := threads[1].Next(); err != nil {
			t.Fatal(err)
		}
		pr.Close()
	}
	// All generator goroutines must be reaped (small slack for runtime
	// helpers unrelated to the programs).
	waitGoroutines(t, before+2)
}

// TestCloseRunsThreadDefers checks that closing unwinds thread bodies
// through their deferred calls — application cleanup still runs.
func TestCloseRunsThreadDefers(t *testing.T) {
	cleaned := make(chan int, 2)
	pr := &Program{
		Threads: 2,
		Buffer:  1,
		Body: func(th *Thread) {
			defer func() { cleaned <- th.ID() }()
			th.Send(1-th.ID(), 8, 0, nil) // parks forever: nobody resumes
		},
	}
	pr.Start()
	pr.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-cleaned:
		case <-time.After(5 * time.Second):
			t.Fatal("thread deferred cleanup never ran after Close")
		}
	}
}

// TestCloseIdempotentAndAfterCompletion checks Close is safe twice and after
// a program ran to completion.
func TestCloseIdempotentAndAfterCompletion(t *testing.T) {
	pr := &Program{
		Threads: 1,
		Body: func(th *Thread) {
			th.Emit(ops.NewArith(ops.Add, ops.TypeInt))
		},
	}
	th := pr.Start()[0]
	if _, err := Collect(th); err != nil {
		t.Fatal(err)
	}
	pr.Close()
	pr.Close()
	th.Close()
}

func TestRunAheadBounded(t *testing.T) {
	pr := &Program{
		Threads: 1,
		Buffer:  4,
		Body: func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.Emit(ops.NewArith(ops.Add, ops.TypeInt))
			}
		},
	}
	th := pr.Start()[0]
	// Without consuming, the thread can be at most Buffer ahead (plus the
	// one op it may be blocked sending). We just verify full collection
	// works and sees everything in order.
	got, err := Collect(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d ops", len(got))
	}
}
