package workload

import (
	"fmt"

	"mermaid/internal/annotate"
	"mermaid/internal/ops"
)

// Comm is a small collective-communication library for instrumented SPMD
// programs: barrier, broadcast, reduce, allreduce and allgather built from
// the point-to-point operations of Table 1 (binomial trees for the
// tree-shaped collectives, a ring for allgather). All ranks must call each
// collective in the same order — the usual SPMD contract — because tags are
// assigned from a per-communicator sequence.
//
// Payloads are real Go values routed through the simulator, so algorithmic
// correctness (e.g. an allreduce really producing the global sum) is
// testable end to end.
type Comm struct {
	u    *annotate.Unit
	rank int
	size int
	seq  uint32
}

// NewComm creates a communicator for the calling thread. tagBase reserves a
// tag region; collectives use tags tagBase+1, tagBase+2, … (stay below the
// DSM-reserved space).
func NewComm(u *annotate.Unit, tagBase uint32) *Comm {
	th := u.Thread()
	return &Comm{u: u, rank: th.ID(), size: th.Threads(), seq: tagBase}
}

// Rank returns the calling thread's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

func (c *Comm) nextTag() uint32 {
	c.seq++
	return c.seq
}

// rel converts the caller's rank into root-relative coordinates.
func (c *Comm) rel(root int) int { return (c.rank - root + c.size) % c.size }

// abs converts a root-relative rank back to an absolute one.
func (c *Comm) abs(root, r int) int { return (r + root) % c.size }

// Broadcast distributes the root's payload of the given wire size to every
// rank along a binomial tree (log2(p) rounds). It returns the payload on
// every rank.
func (c *Comm) Broadcast(root int, bytes uint32, payload any) any {
	if root < 0 || root >= c.size {
		panic(fmt.Sprintf("workload: broadcast root %d of %d", root, c.size))
	}
	tag := c.nextTag()
	if c.size == 1 {
		return payload
	}
	r := c.rel(root)
	val := payload
	// Receive from the parent (non-root ranks); mask ends at the level the
	// rank joined the tree.
	mask := 1
	for mask < c.size {
		if r&mask != 0 {
			val = c.u.Recv(c.abs(root, r-mask), tag)
			break
		}
		mask <<= 1
	}
	// Forward to children at all lower levels.
	for m := mask >> 1; m > 0; m >>= 1 {
		if r+m < c.size {
			c.u.Send(c.abs(root, r+m), bytes, tag, val)
		}
	}
	return val
}

// Reduce combines every rank's val with op (a commutative, associative
// combiner) down a binomial tree; the result is returned at the root (other
// ranks receive their partial). Each combine step also charges one
// arithmetic operation, modelling the reduction computation.
func (c *Comm) Reduce(root int, bytes uint32, val float64, op func(a, b float64) float64) float64 {
	tag := c.nextTag()
	r := c.rel(root)
	acc := val
	mask := 1
	for mask < c.size {
		if r&mask == 0 {
			if r+mask < c.size {
				in := c.u.Recv(c.abs(root, r+mask), tag).(float64)
				c.u.Arith(ops.Add, ops.TypeDouble)
				acc = op(acc, in)
			}
		} else {
			c.u.Send(c.abs(root, r-mask), bytes, tag, acc)
			break
		}
		mask <<= 1
	}
	return acc
}

// AllReduce gives every rank the combined value: a reduce to rank 0 followed
// by a broadcast.
func (c *Comm) AllReduce(bytes uint32, val float64, op func(a, b float64) float64) float64 {
	total := c.Reduce(0, bytes, val, op)
	out := c.Broadcast(0, bytes, total)
	return out.(float64)
}

// Barrier blocks until every rank has entered it (a zero-payload
// allreduce).
func (c *Comm) Barrier() {
	c.AllReduce(4, 0, func(a, b float64) float64 { return a + b })
}

// AllGather collects every rank's payload on every rank, by circulating the
// pieces around a ring for size-1 steps. It returns the pieces indexed by
// rank.
func (c *Comm) AllGather(bytes uint32, payload any) []any {
	tag := c.nextTag()
	out := make([]any, c.size)
	out[c.rank] = payload
	if c.size == 1 {
		return out
	}
	type piece struct {
		owner int
		data  any
	}
	cur := piece{c.rank, payload}
	next, prev := (c.rank+1)%c.size, (c.rank-1+c.size)%c.size
	for step := 0; step < c.size-1; step++ {
		if c.rank == c.size-1 {
			in := c.u.Recv(prev, tag).(piece)
			c.u.Send(next, bytes, tag, cur)
			cur = in
		} else {
			c.u.Send(next, bytes, tag, cur)
			cur = c.u.Recv(prev, tag).(piece)
		}
		out[cur.owner] = cur.data
	}
	return out
}

// Gather collects every rank's payload at the root (direct sends; the root
// receives from each rank by source). Non-root ranks get nil.
func (c *Comm) Gather(root int, bytes uint32, payload any) []any {
	tag := c.nextTag()
	if c.rank != root {
		c.u.Send(root, bytes, tag, payload)
		return nil
	}
	out := make([]any, c.size)
	out[root] = payload
	for i := 0; i < c.size; i++ {
		if i != root {
			out[i] = c.u.Recv(i, tag)
		}
	}
	return out
}
