package workload

import (
	"fmt"
	"testing"

	"mermaid/internal/annotate"
	"mermaid/internal/machine"
	"mermaid/internal/network"
	"mermaid/internal/router"
	"mermaid/internal/topology"
	"mermaid/internal/trace"
)

// collectiveMachine builds a detailed ring machine of n T805-ish nodes (any
// n, unlike the mesh presets).
func collectiveMachine(t *testing.T, n int) *machine.Machine {
	t.Helper()
	cfg := machine.T805Grid(2, 1) // borrow node config
	cfg.Nodes = n
	cfg.Network.Topology = topology.Config{Kind: topology.Ring, Nodes: n}
	cfg.Network.Router.Switching = router.StoreAndForward
	cfg.Network.Link = network.LinkConfig{BytesPerCycle: 2, PropDelay: 1}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runCollective executes body on n ranks and fails on any simulation error.
func runCollective(t *testing.T, n int, body func(c *Comm, rank int)) {
	t.Helper()
	m := collectiveMachine(t, n)
	prog := &trace.Program{
		Threads: n,
		Body: func(th *trace.Thread) {
			u := annotate.New(th, annotate.GenericTarget())
			u.Enter("main")
			defer u.Leave()
			body(NewComm(u, 500), th.ID())
		},
	}
	if _, err := m.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		for root := 0; root < n; root += n/2 + 1 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				got := make([]any, n)
				runCollective(t, n, func(c *Comm, rank int) {
					var payload any
					if rank == root {
						payload = "the word"
					}
					got[rank] = c.Broadcast(root, 64, payload)
				})
				for r, v := range got {
					if v != "the word" {
						t.Fatalf("rank %d got %v", r, v)
					}
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var rootGot float64
			runCollective(t, n, func(c *Comm, rank int) {
				v := c.Reduce(0, 8, float64(rank+1), func(a, b float64) float64 { return a + b })
				if rank == 0 {
					rootGot = v
				}
			})
			want := float64(n*(n+1)) / 2
			if rootGot != want {
				t.Fatalf("reduce = %v, want %v", rootGot, want)
			}
		})
	}
}

func TestAllReduceEveryRank(t *testing.T) {
	const n = 6
	got := make([]float64, n)
	runCollective(t, n, func(c *Comm, rank int) {
		got[rank] = c.AllReduce(8, float64(rank), func(a, b float64) float64 { return a + b })
	})
	want := float64(n*(n-1)) / 2
	for r, v := range got {
		if v != want {
			t.Fatalf("rank %d allreduce = %v, want %v", r, v, want)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const n = 4
	got := make([]float64, n)
	runCollective(t, n, func(c *Comm, rank int) {
		got[rank] = c.AllReduce(8, float64((rank*7)%5), func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	})
	for r, v := range got {
		if v != 4 { // max of {0,2,4,1}
			t.Fatalf("rank %d max = %v, want 4", r, v)
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	runCollective(t, 5, func(c *Comm, rank int) {
		for i := 0; i < 3; i++ {
			c.Barrier()
		}
	})
}

func TestAllGather(t *testing.T) {
	const n = 5
	got := make([][]any, n)
	runCollective(t, n, func(c *Comm, rank int) {
		got[rank] = c.AllGather(16, rank*10)
	})
	for r := 0; r < n; r++ {
		if len(got[r]) != n {
			t.Fatalf("rank %d gathered %d pieces", r, len(got[r]))
		}
		for i := 0; i < n; i++ {
			if got[r][i] != i*10 {
				t.Fatalf("rank %d piece %d = %v, want %d", r, i, got[r][i], i*10)
			}
		}
	}
}

func TestGather(t *testing.T) {
	const n, root = 4, 2
	var atRoot []any
	runCollective(t, n, func(c *Comm, rank int) {
		res := c.Gather(root, 16, rank+100)
		if rank == root {
			atRoot = res
		} else if res != nil {
			t.Errorf("non-root rank %d got %v", rank, res)
		}
	})
	for i := 0; i < n; i++ {
		if atRoot[i] != i+100 {
			t.Fatalf("gathered[%d] = %v", i, atRoot[i])
		}
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Distinct tags per call: mixing collectives must not cross-match.
	const n = 4
	runCollective(t, n, func(c *Comm, rank int) {
		c.Barrier()
		v := c.AllReduce(8, 1, func(a, b float64) float64 { return a + b })
		if v != n {
			t.Errorf("allreduce = %v", v)
		}
		got := c.Broadcast(1, 32, map[bool]any{true: "x", false: nil}[rank == 1])
		if got != "x" {
			t.Errorf("broadcast = %v", got)
		}
		c.Barrier()
	})
}
