// Package workload provides instrumented parallel applications — the
// application level of the workbench (§5). Each workload is a threaded
// program (one thread per simulated processor) written against the
// annotation translator: its control flow really executes, its data really
// moves between threads through the simulator, and the annotations describe
// its memory and computational behaviour. The workloads double as the
// realistic application loads of the paper's evaluation: kernels typical of
// scientific computing on distributed-memory MIMD machines.
package workload

import (
	"fmt"

	"mermaid/internal/annotate"
	"mermaid/internal/ops"
	"mermaid/internal/trace"
)

// tags used by the workloads.
const (
	tagData       = 1
	tagHalo       = 2
	tagRing       = 3
	tagGatherBase = 100
)

// PingPong bounces a message of msgBytes between two processors rounds
// times, with a little local work per round. The classic latency microkernel
// used to calibrate communication parameters.
func PingPong(rounds int, msgBytes uint32) *trace.Program {
	return &trace.Program{
		Threads: 2,
		Body: func(th *trace.Thread) {
			u := annotate.New(th, annotate.GenericTarget())
			u.Enter("main")
			defer u.Leave()
			counter := u.Local("i", ops.MemWord)
			u.Loop("rounds", rounds, func(int) {
				u.Load(counter)
				u.Arith(ops.Add, ops.TypeInt)
				u.Store(counter)
				if th.ID() == 0 {
					u.Send(1, msgBytes, tagData, nil)
					u.Recv(1, tagData)
				} else {
					u.Recv(0, tagData)
					u.Send(0, msgBytes, tagData, nil)
				}
			})
		},
	}
}

// RingAllreduce sums one float64 value per processor around a ring: each
// node computes a local partial from its slice of data, then the partials
// circulate; every node ends with the global sum. The result is returned
// through results[rank], so tests can check numerical correctness of the
// parallel execution end to end.
func RingAllreduce(nodes, elemsPerNode int, results []float64) *trace.Program {
	if len(results) != nodes {
		panic("workload: results slice must have one entry per node")
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			data := u.GlobalArray("data", ops.MemFloat8, elemsPerNode)
			u.Enter("main")
			defer u.Leave()
			acc := u.Local("acc", ops.MemFloat8)

			// Local reduction over our slice; element value = rank*e + i.
			local := 0.0
			u.Loop("reduce", elemsPerNode, func(i int) {
				u.LoadElem(data, i)
				u.Load(acc)
				u.Arith(ops.Add, ops.TypeDouble)
				u.Store(acc)
				local += float64(rank*elemsPerNode + i)
			})

			// Ring exchange of partial sums: n-1 steps; deadlock-free via
			// lower-rank-sends-first on the closing edge.
			sum := local
			incoming := local
			next, prev := (rank+1)%n, (rank-1+n)%n
			u.Loop("ring", n-1, func(int) {
				if rank == n-1 {
					v := u.Recv(prev, tagRing).(float64)
					u.Send(next, 8, tagRing, incoming)
					incoming = v
				} else {
					u.Send(next, 8, tagRing, incoming)
					incoming = u.Recv(prev, tagRing).(float64)
				}
				u.Load(acc)
				u.Arith(ops.Add, ops.TypeDouble)
				u.Store(acc)
				sum += incoming
			})
			results[rank] = sum
		},
	}
}

// Jacobi1D runs iters sweeps of a three-point stencil over a 1-D domain of
// cells points split across the processors, exchanging one-point halos with
// both neighbours each iteration (the archetypal coarse-grained computation
// alternated with communication phases, §3.2).
func Jacobi1D(nodes, cells, iters int) *trace.Program {
	per := cells / nodes
	if per < 2 {
		panic(fmt.Sprintf("workload: %d cells over %d nodes leaves <2 per node", cells, nodes))
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			grid := u.GlobalArray("grid", ops.MemFloat8, per+2) // plus halos
			tmp := u.GlobalArray("tmp", ops.MemFloat8, per+2)
			u.Enter("main")
			defer u.Leave()
			left, right := rank-1, rank+1

			u.Loop("iter", iters, func(int) {
				// Halo exchange, deadlock-free (lower rank sends first).
				if left >= 0 {
					u.Send(left, 8, tagHalo, nil)
					u.Recv(left, tagHalo)
				}
				if right < n {
					u.Recv(right, tagHalo)
					u.Send(right, 8, tagHalo, nil)
				}
				// Stencil sweep.
				u.Loop("sweep", per, func(i int) {
					u.LoadElem(grid, i)
					u.LoadElem(grid, i+1)
					u.LoadElem(grid, i+2)
					u.Arith(ops.Add, ops.TypeDouble)
					u.Arith(ops.Add, ops.TypeDouble)
					u.Arith(ops.Mul, ops.TypeDouble) // x 1/3
					u.StoreElem(tmp, i+1)
				})
				// Copy back.
				u.Loop("copy", per, func(i int) {
					u.LoadElem(tmp, i+1)
					u.StoreElem(grid, i+1)
				})
			})
		},
	}
}

// MatMul multiplies two dim x dim matrices with a block-row distribution:
// each processor owns dim/nodes rows of A and of C and the whole of B,
// computes its block locally, then allgathers the C blocks around a ring.
// Matrix values travel as real payloads, so the distributed product can be
// verified against a sequential one.
func MatMul(nodes, dim int, out *[][]float64) *trace.Program {
	rows := dim / nodes
	if rows < 1 {
		panic("workload: more nodes than matrix rows")
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			a := u.GlobalArray("A", ops.MemFloat8, rows*dim)
			b := u.GlobalArray("B", ops.MemFloat8, dim*dim)
			c := u.GlobalArray("C", ops.MemFloat8, rows*dim)
			u.Enter("main")
			defer u.Leave()
			acc := u.Local("acc", ops.MemFloat8)

			// Deterministic matrix contents: A[i][j] = i+j, B[i][j] = i-j.
			block := make([][]float64, rows)
			for i := range block {
				block[i] = make([]float64, dim)
			}
			u.Loop("i", rows, func(i int) {
				gi := rank*rows + i
				u.Loop("j", dim, func(j int) {
					u.Store(acc) // zero the accumulator
					u.Loop("k", dim, func(k int) {
						u.LoadElem(a, i*dim+k)
						u.LoadElem(b, k*dim+j)
						u.Arith(ops.Mul, ops.TypeDouble)
						u.Load(acc)
						u.Arith(ops.Add, ops.TypeDouble)
						u.Store(acc)
						block[i][j] += float64(gi+k) * float64(k-j)
					})
					u.StoreElem(c, i*dim+j)
				})
			})

			// Ring allgather of the C blocks.
			cur := block
			curOwner := rank
			mine := make([][][]float64, n)
			mine[rank] = block
			next, prev := (rank+1)%n, (rank-1+n)%n
			u.Loop("gather", n-1, func(int) {
				bytes := uint32(rows * dim * 8)
				type piece struct {
					owner int
					data  [][]float64
				}
				if rank == n-1 {
					in := u.Recv(prev, tagGatherBase).(piece)
					u.Send(next, bytes, tagGatherBase, piece{curOwner, cur})
					cur, curOwner = in.data, in.owner
				} else {
					u.Send(next, bytes, tagGatherBase, piece{curOwner, cur})
					in := u.Recv(prev, tagGatherBase).(piece)
					cur, curOwner = in.data, in.owner
				}
				mine[curOwner] = cur
			})
			if rank == 0 {
				full := make([][]float64, 0, dim)
				for owner := 0; owner < n; owner++ {
					full = append(full, mine[owner]...)
				}
				if out != nil {
					*out = full
				}
			}
		},
	}
}

// Transpose performs an all-to-all exchange: each processor sends a distinct
// block to every other, the communication structure of a distributed matrix
// transpose or FFT. Pairwise XOR-scheduled rounds keep the rendezvous
// traffic deadlock-free.
func Transpose(nodes int, blockBytes uint32) *trace.Program {
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			u.Enter("main")
			defer u.Leave()
			buf := u.LocalArray("buf", ops.MemFloat8, 64)
			npow := 1
			for npow < n {
				npow <<= 1
			}
			u.Loop("rounds", npow-1, func(r int) {
				partner := rank ^ (r + 1)
				if partner >= n {
					return
				}
				// Touch the outgoing block.
				u.Loop("pack", 8, func(i int) {
					u.LoadElem(buf, i)
					u.StoreElem(buf, i+8)
				})
				if rank < partner {
					u.Send(partner, blockBytes, uint32(tagGatherBase+r), nil)
					u.Recv(partner, uint32(tagGatherBase+r))
				} else {
					u.Recv(partner, uint32(tagGatherBase+r))
					u.Send(partner, blockBytes, uint32(tagGatherBase+r), nil)
				}
			})
		},
	}
}

// RecvAnyServer is the trace-validity workload (E6): node 0 services
// requests from every other node in whatever order they arrive on the
// target machine — the arrival order, and hence the trace, depends on the
// architecture. work[rank] loop iterations of local computation precede each
// client's request; the observed service order is appended to *order.
func RecvAnyServer(nodes int, reqBytes uint32, work []int, order *[]int) *trace.Program {
	if len(work) != nodes {
		panic("workload: work slice must have one entry per node")
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			u.Enter("main")
			defer u.Leave()
			w := u.Local("w", ops.MemWord)
			if rank == 0 {
				for i := 1; i < n; i++ {
					src, _ := u.RecvAny(tagData)
					*order = append(*order, src)
					u.Load(w)
					u.Arith(ops.Add, ops.TypeInt)
					u.Store(w)
				}
			} else {
				// Each client computes for its configured time, then asks.
				u.Loop("work", work[rank], func(int) {
					u.Load(w)
					u.Arith(ops.Mul, ops.TypeInt)
					u.Store(w)
				})
				u.ASend(0, reqBytes, tagData, rank)
			}
		},
	}
}

// SharedCounter is a shared-memory workload for multi-CPU nodes: every CPU
// increments a counter in the same cache line (true sharing) and one in its
// own line (no sharing), exposing coherence traffic differences. One thread
// per CPU on a single node.
func SharedCounter(cpus, increments int) *trace.Program {
	return &trace.Program{
		Threads: cpus,
		Body: func(th *trace.Thread) {
			u := annotate.New(th, annotate.GenericTarget())
			// All threads use the same addresses for "shared" and disjoint
			// addresses for "private".
			shared := u.Global("shared", ops.MemWord) // same address everywhere
			for i := 0; i < th.ID(); i++ {
				// One cache line of padding per rank keeps the private
				// counters in distinct lines.
				u.GlobalArray(fmt.Sprintf("pad%d", i), ops.MemFloat8, 8)
			}
			private := u.Global("private", ops.MemWord)
			u.Enter("main")
			defer u.Leave()
			u.Loop("inc", increments, func(int) {
				u.Load(shared)
				u.Arith(ops.Add, ops.TypeInt)
				u.Store(shared)
				u.Load(private)
				u.Arith(ops.Add, ops.TypeInt)
				u.Store(private)
			})
		},
	}
}

// JacobiDSM is the Jacobi solver rewritten for virtual shared memory: the
// whole grid lives in the shared segment and neighbouring nodes' halo values
// are read directly through loads — no explicit communication appears in the
// application (§5's "hide all explicit communication"). Iterations are
// separated by a message barrier so the comparison with Jacobi1D isolates
// the data movement.
func JacobiDSM(nodes, cells, iters int) *trace.Program {
	per := cells / nodes
	if per < 2 {
		panic(fmt.Sprintf("workload: %d cells over %d nodes leaves <2 per node", cells, nodes))
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank, n := th.ID(), th.Threads()
			u := annotate.New(th, annotate.GenericTarget())
			grid := u.SharedArray("grid", ops.MemFloat8, cells)
			tmp := u.GlobalArray("tmp", ops.MemFloat8, per)
			u.Enter("main")
			defer u.Leave()
			lo := rank * per

			barrier := func(tag uint32) {
				// Linear barrier through node 0.
				if rank == 0 {
					for i := 1; i < n; i++ {
						th.Recv(i, tag)
					}
					for i := 1; i < n; i++ {
						th.ASend(i, 4, tag+1, nil)
					}
				} else {
					th.ASend(0, 4, tag, nil)
					th.Recv(0, tag+1)
				}
			}

			u.Loop("iter", iters, func(it int) {
				u.Loop("sweep", per, func(i int) {
					g := lo + i
					// Neighbour reads may cross into other nodes' slices:
					// those loads fault through the DSM instead of
					// explicit halo messages.
					if g > 0 {
						u.LoadElem(grid, g-1)
					}
					u.LoadElem(grid, g)
					if g < cells-1 {
						u.LoadElem(grid, g+1)
					}
					u.Arith(ops.Add, ops.TypeDouble)
					u.Arith(ops.Add, ops.TypeDouble)
					u.Arith(ops.Mul, ops.TypeDouble)
					u.StoreElem(tmp, i)
				})
				u.Loop("copy", per, func(i int) {
					u.LoadElem(tmp, i)
					u.StoreElem(grid, lo+i)
				})
				barrier(uint32(1000 + 2*it))
			})
		},
	}
}

// Butterfly runs the communication structure of a radix-2 FFT or
// bit-reversal permutation: log2(nodes) stages, each a pairwise exchange
// with the partner differing in one rank bit, with computation between
// stages. nodes must be a power of two.
func Butterfly(nodes int, blockBytes uint32, workPerStage int) *trace.Program {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("workload: butterfly needs a power-of-two node count, got %d", nodes))
	}
	stages := 0
	for x := nodes; x > 1; x >>= 1 {
		stages++
	}
	return &trace.Program{
		Threads: nodes,
		Body: func(th *trace.Thread) {
			rank := th.ID()
			u := annotate.New(th, annotate.GenericTarget())
			buf := u.GlobalArray("buf", ops.MemFloat8, 64)
			u.Enter("main")
			defer u.Leave()
			for s := 0; s < stages; s++ {
				partner := rank ^ (1 << s)
				tag := uint32(700 + s)
				// Twiddle computation between stages.
				u.Loop(fmt.Sprintf("stage%d", s), workPerStage, func(i int) {
					u.LoadElem(buf, i%64)
					u.Arith(ops.Mul, ops.TypeDouble)
					u.Arith(ops.Add, ops.TypeDouble)
					u.StoreElem(buf, i%64)
				})
				if rank < partner {
					u.Send(partner, blockBytes, tag, nil)
					u.Recv(partner, tag)
				} else {
					u.Recv(partner, tag)
					u.Send(partner, blockBytes, tag, nil)
				}
			}
		},
	}
}
