package workload

import (
	"testing"

	"mermaid/internal/machine"
)

func TestPingPong(t *testing.T) {
	m, err := machine.New(machine.T805Grid(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunProgram(PingPong(10, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if m.Network().Messages() != 20 {
		t.Fatalf("messages = %d, want 20", m.Network().Messages())
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatal("empty run")
	}
}

func TestRingAllreduceNumericallyCorrect(t *testing.T) {
	const nodes, elems = 4, 8
	results := make([]float64, nodes)
	m, err := machine.New(machine.T805Grid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProgram(RingAllreduce(nodes, elems, results)); err != nil {
		t.Fatal(err)
	}
	// Global sum of rank*elems+i over all ranks and i.
	want := 0.0
	for r := 0; r < nodes; r++ {
		for i := 0; i < elems; i++ {
			want += float64(r*elems + i)
		}
	}
	for r, got := range results {
		if got != want {
			t.Fatalf("rank %d sum = %v, want %v (data really moved through the simulator)", r, got, want)
		}
	}
}

func TestJacobi1D(t *testing.T) {
	m, err := machine.New(machine.T805Grid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunProgram(Jacobi1D(4, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	// 3 iterations, interior nodes exchange 2 halos each way.
	if m.Network().Messages() == 0 {
		t.Fatal("no halo exchange")
	}
	if res.Cycles == 0 {
		t.Fatal("no time simulated")
	}
}

func TestMatMulMatchesSequential(t *testing.T) {
	const nodes, dim = 2, 8
	var out [][]float64
	m, err := machine.New(machine.T805Grid(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProgram(MatMul(nodes, dim, &out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != dim {
		t.Fatalf("result has %d rows", len(out))
	}
	// Sequential reference: A[i][j] = i+j, B[i][j] = i-j.
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			want := 0.0
			for k := 0; k < dim; k++ {
				want += float64(i+k) * float64(k-j)
			}
			if out[i][j] != want {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, out[i][j], want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		var cfg machine.Config
		if nodes == 2 {
			cfg = machine.T805Grid(2, 1)
		} else {
			cfg = machine.T805Grid(2, 2)
		}
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunProgram(Transpose(nodes, 512)); err != nil {
			t.Fatalf("%d nodes: %v", nodes, err)
		}
		want := uint64(nodes * (nodes - 1)) // every ordered pair
		if got := m.Network().Messages(); got != want {
			t.Fatalf("%d nodes: messages = %d, want %d", nodes, got, want)
		}
	}
}

func TestRecvAnyServerOrderDependsOnWork(t *testing.T) {
	var order []int
	m, err := machine.New(machine.T805Grid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProgram(RecvAnyServer(4, 64, []int{0, 20, 40, 60}, &order)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// Clients compute rank*20 loop iterations before sending, so lower
	// ranks inject earlier; rank 1 must be served before rank 3.
	pos := map[int]int{}
	for i, r := range order {
		pos[r] = i
	}
	if pos[1] > pos[3] {
		t.Fatalf("order = %v: rank 1 should beat rank 3", order)
	}
}

func TestSharedCounterCoherenceTraffic(t *testing.T) {
	m, err := machine.New(machine.PPC601SMP(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProgram(SharedCounter(4, 50)); err != nil {
		t.Fatal(err)
	}
	h := m.Nodes()[0].Hierarchy()
	var invals uint64
	for cpuIdx := 0; cpuIdx < 4; cpuIdx++ {
		invals += h.PrivateCache(cpuIdx, 0).S.SnoopInvalidates.Value()
	}
	if invals == 0 {
		t.Fatal("true sharing produced no invalidations")
	}
}

func TestButterfly(t *testing.T) {
	m, err := machine.New(machine.T805Grid(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunProgram(Butterfly(4, 1024, 8))
	if err != nil {
		t.Fatal(err)
	}
	// log2(4)=2 stages, every node sends once per stage: 8 messages.
	if got := m.Network().Messages(); got != 8 {
		t.Fatalf("messages = %d, want 8", got)
	}
	if res.Cycles == 0 {
		t.Fatal("no time simulated")
	}
}

func TestButterflyRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Butterfly(6, 64, 1)
}
